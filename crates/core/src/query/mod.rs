//! The unified ranking query engine: **one entry point for every
//! semantics, backend, and numeric mode**.
//!
//! The paper's central claim is that PT(h), U-Rank, E-Score, E-Rank,
//! consensus top-k and friends are all instances of one parameterized
//! ranking function. This module makes the code embody that unification:
//! a [`RankQuery`] pairs a [`Semantics`] with an [`Algorithm`] and runs
//! against any [`ProbabilisticRelation`] backend — tuple-independent
//! relations, probabilistic and/xor trees, or (via `prf-graphical`'s
//! adapter) junction-tree-correlated relations.
//!
//! ```
//! use prf_core::query::{Algorithm, RankQuery, Semantics};
//! use prf_pdb::IndependentDb;
//!
//! let db = IndependentDb::from_pairs([(100.0, 0.5), (50.0, 1.0), (80.0, 0.8)])?;
//!
//! // PT(2): rank by the probability of making the top 2.
//! let pt = RankQuery::pt(2).run(&db)?;
//! assert_eq!(pt.ranking.len(), 3);
//!
//! // PRFe(0.9), letting the engine pick the numeric mode.
//! let prfe = RankQuery::prfe(0.9).algorithm(Algorithm::Auto).run(&db)?;
//! assert_eq!(prfe.report.algorithm, Algorithm::ExactGf); // small n → exact
//!
//! // The same query object is reusable across backends.
//! let q = RankQuery::new(Semantics::ERank);
//! let tree = prf_pdb::AndXorTree::from_independent(&db);
//! assert_eq!(q.run(&db)?.ranking.order(), q.run(&tree)?.ranking.order());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Semantics × algorithm compatibility
//!
//! | semantics | `ExactGf` | `LogDomain` | `Scaled` | `DftApprox` |
//! |---|---|---|---|---|
//! | `Prf(ω)` | ✓ | — | — | ✓ (rank-only ω with a truncation) |
//! | `Prfe(α)` | ✓ | ✓ (real α ∈ [0, 1]) | ✓ | — |
//! | `Pt(h)` / `Consensus(k)` | ✓ | — | — | ✓ |
//! | `UTop(k)` / `URank(k)` / `ERank` / `EScore` | ✓ | — | — | — |
//!
//! Incompatible pairs return [`QueryError::IncompatibleAlgorithm`] rather
//! than silently degrading (`DftApprox` additionally rejects
//! *tuple-dependent* weight functions, which a PRFe mixture cannot
//! represent); [`Algorithm::Auto`] (the default) always picks a compatible
//! member, and for PRFe keeps the plain-complex exact route only while the
//! walk provably stays clear of `f64` underflow (an α-aware threshold
//! `≈ 620/(−ln α)`, capped at 4096) before switching to the
//! underflow-free log-domain/scaled routes.

use std::sync::Arc;
use std::time::Instant;

use prf_numeric::{Complex, Scaled};
use prf_pdb::TupleId;

use crate::incremental::GfStats;
use crate::mixture::{approximate_weights, DftApproxConfig};
use crate::topk::{Ranking, ValueOrder};
use crate::weights::{tabulate, StepWeight, WeightFunction};

pub mod batch;
pub mod kernels;
mod key;
mod prepared;
mod relation;

pub use batch::{BatchCost, BatchPlan, BatchRoute, QueryBatch};
pub use key::QueryKey;
pub use prepared::{PreparedRelation, PreparedState};
pub use relation::{CorrelationClass, ProbabilisticRelation};

/// Fallback ceiling of [`auto_prfe_exact_max`] for complex or edge-case α
/// (`α ∉ (0, 1)`), where the per-tuple magnitude decay has no simple
/// closed form — the pre-profiling hand-set value, kept as the
/// conservative legacy bound.
const AUTO_PRFE_EXACT_MAX: usize = 1024;
/// Ceiling of [`auto_prfe_exact_max`] for well-conditioned α: past this
/// size the log-domain/scaled routes are just as fast, so there is nothing
/// to win by staying in plain complex arithmetic.
const AUTO_PRFE_EXACT_CAP: usize = 4096;
/// Magnitude budget (in nats) of the plain-complex PRFe walk: the walk's
/// running generating-function values decay at worst like `αᵏ`, and
/// `e^(−620) ≈ 10^(−269)` keeps them ~35 decades above `f64`'s subnormal
/// cliff (`≈ 4.9·10^(−324)`) where ranking keys lose all precision.
const AUTO_PRFE_LN_BUDGET: f64 = 620.0;

/// Largest `n` for which `Auto` keeps PRFe(α) in plain complex
/// arithmetic, α-aware: `min(4096, 620 / (−ln α))` for real `α ∈ (0, 1)`,
/// the legacy 1024 otherwise.
///
/// Profiled with the `live` experiment scenario (`cargo run --release -p
/// prf-bench --bin experiments -- live`), which finds the smallest `n*`
/// where the plain-complex ranking actually diverges from scaled ground
/// truth. Measured `n*` tracks `Θ(1/(−ln α))` and sits a 2.5–6× factor
/// above this bound (α = 0.01: bound 134, measured n* = 847; α = 0.1:
/// 269 vs 1015; α = 0.5: 894 vs 2473; α = 0.9: capped 4096 vs 14744) —
/// so the bound switches to the underflow-free routes well before
/// precision is lost, never after. The old hand-set threshold (1024) was
/// *unsafe* for α ≤ 0.05 (measured divergence at n* = 847 and 882, below
/// 1024) and needlessly conservative for α near 1.
fn auto_prfe_exact_max(alpha: Complex) -> usize {
    if alpha.im != 0.0 || !(alpha.re > 0.0 && alpha.re < 1.0) {
        return AUTO_PRFE_EXACT_MAX;
    }
    let bound = AUTO_PRFE_LN_BUDGET / -alpha.re.ln();
    (bound as usize).clamp(1, AUTO_PRFE_EXACT_CAP)
}
/// `Auto` switches PT(h)/Consensus(k) on *general* trees to the DFT
/// mixture approximation beyond this size. With the incremental engine the
/// old `O(n²·h)` wall is gone — both paths are near-linear in `n` (exact
/// pays one extra `log` factor) — so the floor only keeps small relations
/// exact unconditionally; it was raised from 2048 when incremental exact
/// evaluation landed.
const AUTO_DFT_MIN_N: usize = 4096;
/// …and this truncation depth. Measured on the incremental engine
/// (`cargo bench -p prf-bench --bench trees`, group `pt_exact_vs_dft_10k`,
/// Syn-MED n = 10⁴, 2026-07-30): exact 206 ms vs 40-term mixture 342 ms at
/// h = 128, 363 ms vs 354 ms at h = 256, 496 ms vs 343 ms at h = 512 — the
/// mixture's cost is h-independent while exact grows ~h², crossing at
/// h ≈ 256 (and slightly later for larger n). The previous hand-set value
/// (64) pre-dated the engine, when exact was `O(n²·h)`.
const AUTO_DFT_MIN_H: usize = 256;
/// Mixture size `Auto` uses for the DFT approximation.
const AUTO_DFT_TERMS: usize = 40;

/// A ranking semantics — every entry of the paper's taxonomy, expressed
/// through the PRF framework wherever the paper shows it is an instance.
#[derive(Clone)]
pub enum Semantics {
    /// PRFω with an arbitrary weight function `ω(t, i)` (Definition 3).
    Prf(Arc<dyn WeightFunction + Send + Sync>),
    /// PRFe(α): `ω(i) = αⁱ` with real or complex `α` (Section 4.3).
    Prfe(Complex),
    /// PT(h) / Global-Top-k: `ω(i) = δ(i ≤ h)` (Hua et al.).
    Pt(usize),
    /// U-Top: the most probable top-k *set* (Soliman et al.) — the one
    /// semantics outside the PRF family, kept for completeness.
    UTop(usize),
    /// U-Rank with distinct tuples: position `j`'s winner maximises
    /// `Pr(r(t) = j)` — PRF with `ω(i) = δ(i = j)` per position.
    URank(usize),
    /// Expected ranks (Cormode et al.), lower is better; ranked by `−er`.
    ERank,
    /// Expected score `p(t)·score(t)` — PRF with `ω(t, i) = score(t)`.
    EScore,
    /// Consensus top-k under symmetric difference ≡ PT(k) (Theorem 2).
    /// For the *weighted* symmetric difference use [`Semantics::Prf`] with
    /// a [`crate::weights::TabulatedWeight`] (Theorem 3).
    Consensus(usize),
}

impl Semantics {
    /// A short human-readable name (echoed in [`EvalReport`]).
    pub fn name(&self) -> String {
        match self {
            Semantics::Prf(w) => format!("PRFω[{}]", w.name()),
            Semantics::Prfe(a) => format!("PRFe({a})"),
            Semantics::Pt(h) => format!("PT({h})"),
            Semantics::UTop(k) => format!("U-Top({k})"),
            Semantics::URank(k) => format!("U-Rank({k})"),
            Semantics::ERank => "E-Rank".into(),
            Semantics::EScore => "E-Score".into(),
            Semantics::Consensus(k) => format!("Consensus({k})"),
        }
    }

    /// The effective weight function for the weight-based semantics
    /// (`Prf`, `Pt`, `Consensus`), `None` otherwise.
    fn weight(&self) -> Option<Arc<dyn WeightFunction + Send + Sync>> {
        match self {
            Semantics::Prf(w) => Some(w.clone()),
            Semantics::Pt(h) => Some(Arc::new(StepWeight { h: *h })),
            Semantics::Consensus(k) => Some(Arc::new(StepWeight { h: *k })),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Semantics({})", self.name())
    }
}

/// Evaluation strategy selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// Let the engine choose, keyed on `n`, the backend's correlation
    /// class, and (for PRFe) α — plain-complex exact only while `n` is
    /// under the α-aware underflow threshold (`≈ 620/(−ln α)`, capped at
    /// 4096), the log-domain/scaled routes beyond it.
    Auto,
    /// The exact generating-function algorithms in plain complex
    /// arithmetic (Algorithms 1–3 of the paper).
    ExactGf,
    /// Log-space `f64` evaluation — the cheapest underflow-free mode;
    /// PRFe with real `α ∈ [0, 1]` only.
    LogDomain,
    /// Scaled-complex arithmetic (mantissa + chunked exponent): exact
    /// ranking keys at any scale, PRFe with any α.
    Scaled,
    /// Approximate a truncated rank-only weight function by a mixture of
    /// PRFe terms via the refined DFT pipeline (Section 5.1), then rank by
    /// the mixture's real part in scaled arithmetic.
    DftApprox(DftApproxConfig),
}

impl Algorithm {
    /// A short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::ExactGf => "exact-gf",
            Algorithm::LogDomain => "log-domain",
            Algorithm::Scaled => "scaled",
            Algorithm::DftApprox(_) => "dft-approx",
        }
    }
}

/// The numeric mode a query was evaluated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumericMode {
    /// Plain complex (`f64` pairs).
    Complex,
    /// `ln Υ` keys in plain `f64`.
    LogDomain,
    /// Scaled-complex (mantissa + chunked exponent).
    Scaled,
}

/// Per-tuple Υ-like values in the numeric mode the engine evaluated in,
/// indexed by tuple id.
#[derive(Clone, Debug)]
pub enum Values {
    /// Plain complex Υ values. For `ERank` these hold `−er(t)` (so higher
    /// is better, like every other semantics); for `URank`/`UTop` they hold
    /// the winning positional probability / set membership indicator.
    Complex(Vec<Complex>),
    /// `ln Υ` keys (`-∞` where `Υ = 0`).
    LogDomain(Vec<f64>),
    /// Scaled complex Υ values.
    Scaled(Vec<Scaled<Complex>>),
}

impl Values {
    /// Number of tuples covered.
    pub fn len(&self) -> usize {
        match self {
            Values::Complex(v) => v.len(),
            Values::LogDomain(v) => v.len(),
            Values::Scaled(v) => v.len(),
        }
    }

    /// `true` when the relation was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The numeric mode of these values.
    pub fn numeric_mode(&self) -> NumericMode {
        match self {
            Values::Complex(_) => NumericMode::Complex,
            Values::LogDomain(_) => NumericMode::LogDomain,
            Values::Scaled(_) => NumericMode::Scaled,
        }
    }

    /// The plain complex values, when evaluated in that mode.
    pub fn as_complex(&self) -> Option<&[Complex]> {
        match self {
            Values::Complex(v) => Some(v),
            _ => None,
        }
    }

    /// The log-domain keys, when evaluated in that mode.
    pub fn as_log(&self) -> Option<&[f64]> {
        match self {
            Values::LogDomain(v) => Some(v),
            _ => None,
        }
    }

    /// The scaled values, when evaluated in that mode.
    pub fn as_scaled(&self) -> Option<&[Scaled<Complex>]> {
        match self {
            Values::Scaled(v) => Some(v),
            _ => None,
        }
    }
}

/// A set-semantics answer (U-Top): the members (score-descending) and the
/// natural log of the set's probability of being the exact top-k.
#[derive(Clone, Debug)]
pub struct TopSet {
    /// The chosen tuples, best (highest-scored) first.
    pub members: Vec<TupleId>,
    /// `ln Pr(members is the exact top-k)`.
    pub log_prob: f64,
}

/// What fired a serving-layer batch flush — recorded by `prf-serve`'s
/// `RankServer` in [`ServeCost`] so every answer carries its scheduling
/// provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The oldest pending query reached the configured deadline (a zero
    /// deadline flushes on the first wake-up after every submission).
    Deadline,
    /// The pending queue reached the configured maximum batch size.
    SizeLimit,
    /// The server was shut down and drained its in-flight queries.
    Shutdown,
}

impl std::fmt::Display for FlushTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FlushTrigger::Deadline => "deadline",
            FlushTrigger::SizeLimit => "size-limit",
            FlushTrigger::Shutdown => "shutdown",
        })
    }
}

/// Serving-layer provenance recorded in a query's [`EvalReport`] by
/// `prf-serve`: how long the query waited in the server's pending queue,
/// what fired the flush that answered it, how many queries that flush
/// carried, and the admission-control counters of the relation's queue.
/// `None` for queries that did not go through a `RankServer`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeCost {
    /// Seconds between submission and the start of the flush that served
    /// this query.
    pub queue_seconds: f64,
    /// What fired the flush.
    pub trigger: FlushTrigger,
    /// Number of queries in the flush (all relations' entries that were
    /// compiled into the same [`QueryBatch`]).
    pub flush_size: usize,
    /// Depth of the relation's pending queue at the moment this query was
    /// admitted (including the query itself) — the backpressure signal.
    pub queue_depth: usize,
    /// Cumulative count of submissions **shed** from this relation's
    /// bounded queue ([`QueryError::Overloaded`]) up to the flush that
    /// served this query.
    pub shed: u64,
    /// `true` when this answer was served from the relation's result cache
    /// (same [`QueryKey`], same relation generation) instead of joining
    /// the flush's shared walk — the timing fields of the surrounding
    /// [`EvalReport`] then describe the evaluation that *populated* the
    /// cache, not this delivery.
    pub served_from_cache: bool,
}

/// What the engine actually did: echoed parameters, resolved choices, and
/// wall-clock timings.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Human-readable semantics name.
    pub semantics: String,
    /// The backend's correlation class.
    pub backend: CorrelationClass,
    /// The algorithm that ran — never [`Algorithm::Auto`].
    pub algorithm: Algorithm,
    /// `true` when [`Algorithm::Auto`] made the choice.
    pub auto_selected: bool,
    /// The numeric mode of the result values.
    pub numeric_mode: NumericMode,
    /// Seconds spent in the backend's evaluation kernels (value
    /// computation only — ranking construction and bookkeeping excluded).
    pub kernel_seconds: f64,
    /// Seconds for the whole query (kernels + ranking + bookkeeping).
    pub total_seconds: f64,
    /// The ranking was truncated to this many entries, if requested.
    pub truncated_to: Option<usize>,
    /// Worker threads requested for parallel-capable kernels.
    pub threads: Option<usize>,
    /// Memory accounting of the incremental generating-function evaluator
    /// — `Some` when the kernels ran it (exact PRFω/PRFe on and/xor
    /// trees), `None` for closed-form and non-tree kernels.
    pub memory: Option<GfStats>,
    /// Shared-walk cost attribution — `Some` when this query was answered
    /// from a [`QueryBatch`]'s shared walk (its `kernel_seconds` is then
    /// the amortized share), `None` for single queries and for batch
    /// entries that were evaluated individually.
    pub batch: Option<BatchCost>,
    /// Serving-layer provenance — `Some` when this query was answered by a
    /// `prf-serve` `RankServer` flush (queue wait + flush trigger), `None`
    /// for queries run directly.
    pub serve: Option<ServeCost>,
}

/// The answer of a [`RankQuery`]: per-tuple values, the induced ranking,
/// the set answer for set semantics, and an evaluation report.
#[derive(Clone, Debug)]
pub struct RankedResult {
    /// Per-tuple Υ-like values (indexed by tuple id) in the numeric mode
    /// the engine chose.
    pub values: Values,
    /// The ranking, best first (truncated when `top_k` was requested).
    pub ranking: Ranking,
    /// The set answer — `Some` only for [`Semantics::UTop`].
    pub set: Option<TopSet>,
    /// What ran, in which mode, and how long it took.
    pub report: EvalReport,
}

/// Everything that can go wrong building or running a query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The semantics has no exact algorithm on this backend.
    Unsupported {
        /// The semantics that was requested.
        semantics: &'static str,
        /// The backend it was requested on.
        backend: CorrelationClass,
    },
    /// The explicitly selected algorithm cannot evaluate this semantics.
    IncompatibleAlgorithm {
        /// The semantics name.
        semantics: String,
        /// The algorithm name.
        algorithm: &'static str,
    },
    /// A parameter is outside the algorithm's domain (e.g. log-domain
    /// PRFe with complex or out-of-range α).
    InvalidParameter(String),
    /// A set query (U-Top) has no answer: `k` exceeds the relation or no
    /// set has positive probability.
    NoSetAnswer,
    /// A [`QueryBatch`] was run with no entries.
    EmptyBatch,
    /// The query was submitted to (or still pending on) a `prf-serve`
    /// `RankServer` that shut down before it could be evaluated.
    Shutdown,
    /// The query was **shed** by a `prf-serve` `RankServer` under admission
    /// control: the target relation's bounded pending queue was full, and
    /// the submission reported overload instead of growing the queue.
    Overloaded,
    /// The query's deadline expired (or its [`CancelToken`] was tripped)
    /// before evaluation finished: enforced without evaluation at a
    /// `prf-serve` flush dequeue, and cooperatively mid-walk inside the
    /// shared-walk kernels.
    TimedOut,
    /// The evaluation **panicked** (or the serving layer hit an otherwise
    /// impossible state). A `prf-serve` `RankServer` catches the panic,
    /// delivers this error to the one affected handle, and keeps serving —
    /// the panic never takes down the worker pool or poisons shared state.
    Internal {
        /// Best-effort panic payload / diagnostic description.
        reason: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Unsupported { semantics, backend } => {
                write!(
                    f,
                    "{semantics} has no exact algorithm on a {backend} backend"
                )
            }
            QueryError::IncompatibleAlgorithm {
                semantics,
                algorithm,
            } => write!(f, "algorithm '{algorithm}' cannot evaluate {semantics}"),
            QueryError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            QueryError::NoSetAnswer => {
                write!(f, "no set has positive probability of being the top-k")
            }
            QueryError::EmptyBatch => write!(f, "a query batch must contain at least one query"),
            QueryError::Shutdown => {
                write!(
                    f,
                    "the rank server shut down before the query was evaluated"
                )
            }
            QueryError::Overloaded => {
                write!(
                    f,
                    "the relation's pending queue is full; the query was shed"
                )
            }
            QueryError::TimedOut => {
                write!(f, "the query's deadline expired before it was evaluated")
            }
            QueryError::Internal { reason } => {
                write!(f, "internal evaluation failure: {reason}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A cooperative cancellation token checked by the query engine between
/// evaluation steps.
///
/// Three things can trip a token: an explicit [`CancelToken::cancel`]
/// (e.g. `prf-serve` trips a query's token when its `ResponseHandle` is
/// dropped — nobody is left to read the answer), an attached **deadline**
/// (the token reads as cancelled once the instant passes), or — for the
/// composite form built by [`CancelToken::all_of`] — *every* member token
/// being cancelled. The composite form is what a [`QueryBatch`] hands to a
/// shared score-order walk: the walk serves many consumers at once, so it
/// only aborts when **all** of them have given up.
///
/// Cancellation is cooperative and best-effort: kernels poll the token
/// every few hundred steps, so a cancelled query stops *promptly*, not
/// *instantly*. A tripped token surfaces as [`QueryError::TimedOut`].
///
/// ```
/// use prf_core::query::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
///
/// // The composite form trips only when every member has.
/// let (a, b) = (CancelToken::new(), CancelToken::new());
/// let walk = CancelToken::all_of(vec![a.clone(), b.clone()]);
/// a.cancel();
/// assert!(!walk.is_cancelled());
/// b.cancel();
/// assert!(walk.is_cancelled());
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: std::sync::atomic::AtomicBool,
    deadline: Option<Instant>,
    all_of: Vec<CancelToken>,
}

impl CancelToken {
    /// A fresh token with no deadline; trips only via [`Self::cancel`].
    pub fn new() -> Self {
        Self::build(None, Vec::new())
    }

    /// A token that additionally reads as cancelled once `deadline`
    /// passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline), Vec::new())
    }

    /// A composite token that reads as cancelled only when **all**
    /// `members` are cancelled (or it is cancelled directly). An empty
    /// member list never trips on its members' account.
    pub fn all_of(members: Vec<CancelToken>) -> Self {
        Self::build(None, members)
    }

    fn build(deadline: Option<Instant>, all_of: Vec<CancelToken>) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: std::sync::atomic::AtomicBool::new(false),
                deadline,
                all_of,
            }),
        }
    }

    /// Trips the token. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner
            .cancelled
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// `true` once the token is tripped, its deadline has passed, or (for
    /// the composite form) every member token is cancelled.
    pub fn is_cancelled(&self) -> bool {
        if self
            .inner
            .cancelled
            .load(std::sync::atomic::Ordering::Acquire)
        {
            return true;
        }
        if self.inner.deadline.is_some_and(|d| Instant::now() >= d) {
            // Latch, so later polls skip the clock read.
            self.cancel();
            return true;
        }
        !self.inner.all_of.is_empty() && self.inner.all_of.iter().all(|t| t.is_cancelled())
    }

    /// The deadline attached at construction, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder-style ranking query: a [`Semantics`], an [`Algorithm`], and
/// options — run against any [`ProbabilisticRelation`].
///
/// ```
/// use prf_core::query::{Algorithm, RankQuery};
/// use prf_core::StepWeight;
/// use prf_pdb::IndependentDb;
///
/// let db = IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5)])?;
/// let result = RankQuery::prf(StepWeight { h: 2 })
///     .algorithm(Algorithm::ExactGf)
///     .top_k(2)
///     .run(&db)?;
/// assert_eq!(result.ranking.len(), 2);
/// assert!(result.report.total_seconds >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RankQuery {
    semantics: Semantics,
    algorithm: Algorithm,
    top_k: Option<usize>,
    threads: Option<usize>,
    value_order: Option<ValueOrder>,
    cancel: Option<CancelToken>,
}

impl RankQuery {
    /// A query with the given semantics and default options
    /// ([`Algorithm::Auto`], full ranking, serial).
    pub fn new(semantics: Semantics) -> Self {
        RankQuery {
            semantics,
            algorithm: Algorithm::Auto,
            top_k: None,
            threads: None,
            value_order: None,
            cancel: None,
        }
    }

    /// PRFω with an arbitrary weight function.
    pub fn prf(omega: impl WeightFunction + Send + Sync + 'static) -> Self {
        Self::new(Semantics::Prf(Arc::new(omega)))
    }

    /// PRFω with a shared weight function.
    pub fn prf_shared(omega: Arc<dyn WeightFunction + Send + Sync>) -> Self {
        Self::new(Semantics::Prf(omega))
    }

    /// PRFe with a real base α.
    pub fn prfe(alpha: f64) -> Self {
        Self::new(Semantics::Prfe(Complex::real(alpha)))
    }

    /// PRFe with a complex base α.
    pub fn prfe_complex(alpha: Complex) -> Self {
        Self::new(Semantics::Prfe(alpha))
    }

    /// PT(h): rank by `Pr(r(t) ≤ h)`.
    pub fn pt(h: usize) -> Self {
        Self::new(Semantics::Pt(h))
    }

    /// U-Top: the most probable top-k set.
    pub fn utop(k: usize) -> Self {
        Self::new(Semantics::UTop(k))
    }

    /// U-Rank: per-position argmax of `Pr(r(t) = i)`, distinct tuples.
    pub fn urank(k: usize) -> Self {
        Self::new(Semantics::URank(k))
    }

    /// Expected ranks (lower is better; ranked by `−er`).
    pub fn erank() -> Self {
        Self::new(Semantics::ERank)
    }

    /// Expected score.
    pub fn escore() -> Self {
        Self::new(Semantics::EScore)
    }

    /// Consensus top-k under symmetric difference (≡ PT(k), Theorem 2).
    pub fn consensus(k: usize) -> Self {
        Self::new(Semantics::Consensus(k))
    }

    /// Selects the evaluation algorithm (default: [`Algorithm::Auto`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Truncates the returned ranking to its best `k` entries.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Requests `threads` workers for parallel-capable kernels (currently
    /// the general-tree PRFω expansion, via [`crate::parallel`]).
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides how complex/scaled Υ values map to ranking keys
    /// (default: `|Υ|` for `Prf`/`Prfe` per Definition 3, real part for the
    /// real-valued classical semantics and DFT mixtures).
    pub fn value_order(mut self, order: ValueOrder) -> Self {
        self.value_order = Some(order);
        self
    }

    /// Attaches a cooperative [`CancelToken`]: [`Self::run`] checks it up
    /// front (and batch shared walks poll it mid-walk), returning
    /// [`QueryError::TimedOut`] once it trips.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token_ref(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The configured semantics.
    pub fn semantics(&self) -> &Semantics {
        &self.semantics
    }

    /// Resolves [`Algorithm::Auto`] against a backend without running the
    /// query — exposed so callers (and benchmarks) can inspect the
    /// heuristic's choice.
    pub fn resolve_algorithm(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
    ) -> Result<Algorithm, QueryError> {
        let n = rel.n_tuples();
        let class = rel.correlation_class();
        if let Algorithm::Auto = self.algorithm {
            return Ok(match &self.semantics {
                Semantics::Prfe(alpha) => {
                    // Graphical backends stay exact: they have no native
                    // scaled kernel (the trait default merely wraps the
                    // plain values) and their junction-tree DP bounds
                    // feasible n far below the underflow regime anyway.
                    if n <= auto_prfe_exact_max(*alpha) || class == CorrelationClass::Graphical {
                        Algorithm::ExactGf
                    } else if alpha.im == 0.0
                        && (0.0..=1.0).contains(&alpha.re)
                        && class == CorrelationClass::Independent
                    {
                        Algorithm::LogDomain
                    } else {
                        Algorithm::Scaled
                    }
                }
                Semantics::Pt(h) | Semantics::Consensus(h) => {
                    // The exact expansion on a *general* tree is O(n²·h);
                    // beyond the thresholds the refined DFT mixture is the
                    // only practical evaluator (Figure 11(iii)).
                    if class == CorrelationClass::Tree && n > AUTO_DFT_MIN_N && *h > AUTO_DFT_MIN_H
                    {
                        Algorithm::DftApprox(DftApproxConfig::refined(AUTO_DFT_TERMS))
                    } else {
                        Algorithm::ExactGf
                    }
                }
                // Generic PRFω may be tuple-dependent, which the DFT
                // mixture cannot represent — Auto stays exact; callers opt
                // into DftApprox explicitly for rank-only weights.
                _ => Algorithm::ExactGf,
            });
        }
        self.validate_compat()?;
        Ok(self.algorithm)
    }

    fn validate_compat(&self) -> Result<(), QueryError> {
        let incompatible = || {
            Err(QueryError::IncompatibleAlgorithm {
                semantics: self.semantics.name(),
                algorithm: self.algorithm.name(),
            })
        };
        match (&self.semantics, &self.algorithm) {
            (_, Algorithm::Auto) | (_, Algorithm::ExactGf) => Ok(()),
            (Semantics::Prfe(alpha), Algorithm::LogDomain) => {
                if alpha.im == 0.0 && (0.0..=1.0).contains(&alpha.re) {
                    Ok(())
                } else {
                    Err(QueryError::InvalidParameter(format!(
                        "log-domain PRFe requires real α ∈ [0, 1], got {alpha}"
                    )))
                }
            }
            (Semantics::Prfe(_), Algorithm::Scaled) => Ok(()),
            (Semantics::Prfe(_), Algorithm::DftApprox(_)) => incompatible(),
            (sem, Algorithm::DftApprox(_)) => {
                // Weight-based semantics with a finite truncation horizon.
                match sem.weight().and_then(|w| w.truncation()) {
                    Some(h) if h > 0 => Ok(()),
                    _ => incompatible(),
                }
            }
            _ => incompatible(),
        }
    }

    /// Runs the query against a backend.
    pub fn run(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
    ) -> Result<RankedResult, QueryError> {
        let total_start = Instant::now();
        if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            return Err(QueryError::TimedOut);
        }
        let algorithm = self.resolve_algorithm(rel)?;
        let auto_selected = matches!(self.algorithm, Algorithm::Auto);

        let mut kernel_seconds = 0.0;
        let mut memory = None;
        let (values, ranking, set) =
            self.evaluate(rel, algorithm, &mut kernel_seconds, &mut memory)?;

        let mut ranking = ranking;
        if let Some(k) = self.top_k {
            ranking.truncate(k);
        }

        let report = EvalReport {
            semantics: self.semantics.name(),
            backend: rel.correlation_class(),
            algorithm,
            auto_selected,
            numeric_mode: values.numeric_mode(),
            kernel_seconds,
            total_seconds: total_start.elapsed().as_secs_f64(),
            truncated_to: self.top_k,
            threads: self.threads,
            memory,
            batch: None,
            serve: None,
        };
        Ok(RankedResult {
            values,
            ranking,
            set,
            report,
        })
    }

    /// Evaluation proper: values + full ranking (+ set answer).
    /// `kernel_seconds` accumulates time spent in the backend's evaluation
    /// kernels only — ranking construction and bookkeeping are excluded;
    /// `memory` receives the incremental evaluator's accounting when the
    /// kernel ran it.
    fn evaluate(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
        algorithm: Algorithm,
        kernel_seconds: &mut f64,
        memory: &mut Option<GfStats>,
    ) -> Result<(Values, Ranking, Option<TopSet>), QueryError> {
        match &self.semantics {
            Semantics::Prfe(alpha) => {
                self.evaluate_prfe(rel, algorithm, *alpha, kernel_seconds, memory)
            }
            Semantics::Prf(_) | Semantics::Pt(_) | Semantics::Consensus(_) => {
                let omega = self.semantics.weight().expect("weight-based semantics");
                self.evaluate_weighted(rel, algorithm, &*omega, kernel_seconds, memory)
            }
            Semantics::EScore => {
                // ω(t, i) = score(t) makes Υ = Pr(t)·score(t); evaluate the
                // closed form directly rather than through the generating
                // function (O(n) instead of O(n²), bit-identical keys).
                let vals: Vec<Complex> = timed(kernel_seconds, || {
                    rel.tuple_marginals()
                        .iter()
                        .zip(rel.tuple_scores())
                        .map(|(&p, s)| Complex::real(p * s))
                        .collect()
                });
                let ranking =
                    Ranking::from_values(&vals, self.value_order.unwrap_or(ValueOrder::RealPart));
                Ok((Values::Complex(vals), ranking, None))
            }
            Semantics::ERank => {
                let er = timed(kernel_seconds, || rel.expected_ranks()).ok_or(
                    QueryError::Unsupported {
                        semantics: "E-Rank",
                        backend: rel.correlation_class(),
                    },
                )?;
                // Negated so that — like every other semantics — higher
                // values rank better.
                let vals: Vec<Complex> = er.iter().map(|&e| Complex::real(-e)).collect();
                let keys: Vec<f64> = er.into_iter().map(|e| -e).collect();
                Ok((Values::Complex(vals), Ranking::from_keys(&keys), None))
            }
            Semantics::URank(k) => {
                let chosen =
                    timed(kernel_seconds, || rel.positional_candidates(*k)).select_distinct();
                let mut vals = vec![Complex::ZERO; rel.n_tuples()];
                for &(p, t) in &chosen {
                    vals[t.index()] = Complex::real(p);
                }
                let (keys, order): (Vec<f64>, Vec<TupleId>) = chosen.into_iter().unzip();
                Ok((
                    Values::Complex(vals),
                    Ranking::from_order_and_keys(order, keys),
                    None,
                ))
            }
            Semantics::UTop(k) => {
                let (members, log_prob) = timed(kernel_seconds, || rel.most_probable_topk(*k))?;
                let scores = rel.tuple_scores();
                let mut vals = vec![Complex::ZERO; rel.n_tuples()];
                for &t in &members {
                    vals[t.index()] = Complex::ONE;
                }
                let keys: Vec<f64> = members.iter().map(|t| scores[t.index()]).collect();
                let ranking = Ranking::from_order_and_keys(members.clone(), keys);
                Ok((
                    Values::Complex(vals),
                    ranking,
                    Some(TopSet { members, log_prob }),
                ))
            }
        }
    }

    fn evaluate_prfe(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
        algorithm: Algorithm,
        alpha: Complex,
        kernel_seconds: &mut f64,
        memory: &mut Option<GfStats>,
    ) -> Result<(Values, Ranking, Option<TopSet>), QueryError> {
        match algorithm {
            Algorithm::ExactGf => {
                let (vals, stats) = timed(kernel_seconds, || rel.prfe_values_with_stats(alpha));
                *memory = stats;
                let ranking =
                    Ranking::from_values(&vals, self.value_order.unwrap_or(ValueOrder::Magnitude));
                Ok((Values::Complex(vals), ranking, None))
            }
            Algorithm::LogDomain => {
                // A live backend may hold a merged-in-place ranking next to
                // its key cache; taking it skips the O(n log n) sort below.
                if let Some((keys, order)) = timed(kernel_seconds, || rel.prfe_log_ranked(alpha.re))
                {
                    let ranked_keys = order.iter().map(|t| keys[t.index()]).collect();
                    let ranking = Ranking::from_order_and_keys(order, ranked_keys);
                    return Ok((Values::LogDomain(keys), ranking, None));
                }
                let keys = timed(kernel_seconds, || rel.prfe_log_keys(alpha.re));
                let ranking = Ranking::from_keys(&keys);
                Ok((Values::LogDomain(keys), ranking, None))
            }
            Algorithm::Scaled => {
                let (vals, stats) =
                    timed(kernel_seconds, || rel.prfe_values_scaled_with_stats(alpha));
                *memory = stats;
                let ranking = self.rank_scaled(&vals, ValueOrder::Magnitude);
                Ok((Values::Scaled(vals), ranking, None))
            }
            Algorithm::Auto | Algorithm::DftApprox(_) => unreachable!("resolved before evaluate"),
        }
    }

    fn evaluate_weighted(
        &self,
        rel: &(impl ProbabilisticRelation + ?Sized),
        algorithm: Algorithm,
        omega: &(dyn WeightFunction + Send + Sync),
        kernel_seconds: &mut f64,
        memory: &mut Option<GfStats>,
    ) -> Result<(Values, Ranking, Option<TopSet>), QueryError> {
        match algorithm {
            Algorithm::ExactGf => {
                let (vals, stats) = timed(kernel_seconds, || {
                    rel.prf_values_with_stats(omega, self.threads)
                });
                *memory = stats;
                let default_order = match self.semantics {
                    // The classical real-valued semantics rank by the real
                    // part (identical to |Υ| for their non-negative values,
                    // and bitwise-stable for differential comparisons).
                    Semantics::Pt(_) | Semantics::Consensus(_) => ValueOrder::RealPart,
                    _ => ValueOrder::Magnitude,
                };
                let ranking =
                    Ranking::from_values(&vals, self.value_order.unwrap_or(default_order));
                Ok((Values::Complex(vals), ranking, None))
            }
            Algorithm::DftApprox(cfg) => {
                let h = omega.truncation().expect("validated: truncated weight");
                // The mixture can only represent *rank-only* weights. Probe
                // ω with two distinct tuples and reject tuple-dependent
                // weight functions instead of silently tabulating through
                // one representative (which would zero out e.g. a
                // score-proportional ω).
                let probe_a = prf_pdb::Tuple {
                    id: TupleId(0),
                    score: 0.0,
                    prob: 1.0,
                };
                let probe_b = prf_pdb::Tuple {
                    id: TupleId(1),
                    score: 1.0,
                    prob: 0.5,
                };
                if (1..=h).any(|i| omega.weight(&probe_a, i) != omega.weight(&probe_b, i)) {
                    return Err(QueryError::InvalidParameter(format!(
                        "DftApprox requires a rank-only weight function; {} depends on the tuple",
                        omega.name()
                    )));
                }
                let vals = timed(kernel_seconds, || {
                    let tab: Vec<f64> = tabulate(omega, h).iter().map(|w| w.re).collect();
                    let mix = approximate_weights(&|i| tab.get(i).copied().unwrap_or(0.0), h, &cfg);
                    rel.mixture_values(&mix)
                });
                let ranking = self.rank_scaled(&vals, ValueOrder::RealPart);
                Ok((Values::Scaled(vals), ranking, None))
            }
            Algorithm::Auto | Algorithm::LogDomain | Algorithm::Scaled => {
                unreachable!("resolved before evaluate")
            }
        }
    }

    fn rank_scaled(&self, vals: &[Scaled<Complex>], default_order: ValueOrder) -> Ranking {
        self.rank_scaled_topk(vals, default_order, None)
    }

    /// [`RankQuery::rank_scaled`] with the batch engine's top-k pushdown:
    /// `Some(k)` constructs only the best-`k` prefix via partial selection
    /// (identical to the full ranking truncated to `k`).
    fn rank_scaled_topk(
        &self,
        vals: &[Scaled<Complex>],
        default_order: ValueOrder,
        top_k: Option<usize>,
    ) -> Ranking {
        let k = top_k.unwrap_or(vals.len());
        match self.value_order.unwrap_or(default_order) {
            ValueOrder::Magnitude => {
                let keys: Vec<f64> = vals.iter().map(|v| v.magnitude_key()).collect();
                Ranking::from_keys_topk(&keys, k)
            }
            ValueOrder::RealPart => {
                let keys: Vec<_> = vals.iter().map(|v| v.real_part_key()).collect();
                Ranking::from_keys_by_topk(&keys, |k| k.display(), k)
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message — the `reason` a
/// caught evaluation panic surfaces through [`QueryError::Internal`].
/// Handles the two payload shapes `panic!` produces (`&'static str` and
/// formatted `String`); anything else gets a generic description.
pub fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Accumulates the wall-clock cost of `f` into `acc` and returns its
/// result — the kernel-timing primitive of [`EvalReport::kernel_seconds`].
fn timed<R>(acc: &mut f64, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    *acc += start.elapsed().as_secs_f64();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{ExponentialWeight, TabulatedWeight};
    use prf_pdb::{AndXorTree, IndependentDb};

    fn db() -> IndependentDb {
        IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
            (5.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn pt_query_matches_direct_prf() {
        let db = db();
        let direct = crate::independent::prf_rank(&db, &StepWeight { h: 2 });
        let result = RankQuery::pt(2).run(&db).unwrap();
        assert_eq!(result.values.as_complex().unwrap(), &direct[..]);
        assert_eq!(result.report.numeric_mode, NumericMode::Complex);
        assert!(result.report.auto_selected);
        assert_eq!(result.report.algorithm, Algorithm::ExactGf);
    }

    #[test]
    fn consensus_equals_pt() {
        let db = db();
        let pt = RankQuery::pt(3).run(&db).unwrap();
        let cons = RankQuery::consensus(3).run(&db).unwrap();
        assert_eq!(pt.ranking.order(), cons.ranking.order());
    }

    #[test]
    fn prfe_modes_agree_on_ranking() {
        let db = db();
        let exact = RankQuery::prfe(0.8)
            .algorithm(Algorithm::ExactGf)
            .run(&db)
            .unwrap();
        let log = RankQuery::prfe(0.8)
            .algorithm(Algorithm::LogDomain)
            .run(&db)
            .unwrap();
        let scaled = RankQuery::prfe(0.8)
            .algorithm(Algorithm::Scaled)
            .run(&db)
            .unwrap();
        assert_eq!(exact.ranking.order(), log.ranking.order());
        assert_eq!(exact.ranking.order(), scaled.ranking.order());
        assert_eq!(log.report.numeric_mode, NumericMode::LogDomain);
        assert_eq!(scaled.report.numeric_mode, NumericMode::Scaled);
    }

    #[test]
    fn top_k_truncates_ranking_and_reports() {
        let db = db();
        let r = RankQuery::escore().top_k(2).run(&db).unwrap();
        assert_eq!(r.ranking.len(), 2);
        assert_eq!(r.report.truncated_to, Some(2));
        assert_eq!(r.values.len(), db.len()); // values stay complete
    }

    #[test]
    fn utop_carries_set_answer() {
        let db = db();
        let r = RankQuery::utop(2).run(&db).unwrap();
        let set = r.set.expect("set semantics");
        assert_eq!(set.members.len(), 2);
        assert_eq!(r.ranking.order(), &set.members[..]);
        assert!(set.log_prob <= 0.0);
        // k > n has no answer.
        assert_eq!(
            RankQuery::utop(99).run(&db).unwrap_err(),
            QueryError::NoSetAnswer
        );
    }

    #[test]
    fn urank_orders_by_position() {
        let db = db();
        let r = RankQuery::urank(3).run(&db).unwrap();
        assert_eq!(r.ranking.len(), 3);
        // Every selected tuple's value is its winning positional
        // probability.
        for (pos, &t) in r.ranking.order().iter().enumerate() {
            let v = r.values.as_complex().unwrap()[t.index()];
            assert!((v.re - r.ranking.key_at(pos)).abs() < 1e-15);
        }
    }

    #[test]
    fn incompatible_combinations_error() {
        let db = db();
        let err = RankQuery::pt(2)
            .algorithm(Algorithm::LogDomain)
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, QueryError::IncompatibleAlgorithm { .. }));
        let err = RankQuery::prfe_complex(Complex::new(0.5, 0.5))
            .algorithm(Algorithm::LogDomain)
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)));
        let err = RankQuery::erank()
            .algorithm(Algorithm::Scaled)
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, QueryError::IncompatibleAlgorithm { .. }));
        let err = RankQuery::prfe(0.5)
            .algorithm(Algorithm::DftApprox(DftApproxConfig::refined(8)))
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, QueryError::IncompatibleAlgorithm { .. }));
    }

    #[test]
    fn dft_approx_rejects_tuple_dependent_weights() {
        // ω(t, i) = score(t) for i ≤ h is truncated but tuple-dependent —
        // a PRFe mixture cannot represent it, so the engine must error
        // instead of silently tabulating zeros through a dummy tuple.
        let db = db();
        let err = RankQuery::prf(crate::weights::TopScoreWeight)
            .algorithm(Algorithm::DftApprox(DftApproxConfig::refined(8)))
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidParameter(_)), "{err}");
        // Rank-only truncated weights pass the probe.
        RankQuery::pt(3)
            .algorithm(Algorithm::DftApprox(DftApproxConfig::refined(8)))
            .run(&db)
            .unwrap();
    }

    #[test]
    fn tree_queries_report_evaluator_memory() {
        let tree = figure_tree();
        let r = RankQuery::prfe(0.8)
            .algorithm(Algorithm::ExactGf)
            .run(&tree)
            .unwrap();
        let mem = r
            .report
            .memory
            .expect("tree kernels run the incremental engine");
        assert!(mem.plan_nodes > 0);
        assert!(mem.peak_bytes > 0);
        // PT on a general (non-x-tuple) tree also runs the engine…
        let r = RankQuery::pt(2).run(&tree).unwrap();
        let mem = r.report.memory.expect("general tree PT runs the engine");
        assert!(mem.peak_coefficients > 0);
        // …and the scaled mode reports scalar-engine accounting.
        let r = RankQuery::prfe(0.8)
            .algorithm(Algorithm::Scaled)
            .run(&tree)
            .unwrap();
        assert!(r.report.memory.is_some());
        // Independent backends use closed-form kernels — no evaluator.
        let db = db();
        assert!(RankQuery::pt(2).run(&db).unwrap().report.memory.is_none());
        assert!(RankQuery::prfe(0.8)
            .run(&db)
            .unwrap()
            .report
            .memory
            .is_none());
    }

    #[test]
    fn kernel_time_excludes_ranking_and_is_bounded_by_total() {
        let db = db();
        let r = RankQuery::pt(2).run(&db).unwrap();
        assert!(r.report.kernel_seconds >= 0.0);
        assert!(r.report.kernel_seconds <= r.report.total_seconds);
    }

    #[test]
    fn auto_picks_log_domain_for_large_independent_prfe() {
        let db = IndependentDb::from_pairs(
            (0..2000).map(|i| ((2000 - i) as f64, 0.3 + 0.4 * ((i % 7) as f64 / 7.0))),
        )
        .unwrap();
        let q = RankQuery::prfe(0.5);
        assert_eq!(q.resolve_algorithm(&db).unwrap(), Algorithm::LogDomain);
        // Complex α cannot use the log domain.
        let q = RankQuery::prfe_complex(Complex::new(0.4, 0.3));
        assert_eq!(q.resolve_algorithm(&db).unwrap(), Algorithm::Scaled);
    }

    #[test]
    fn auto_picks_dft_for_deep_pt_on_general_trees() {
        // A correlation-class probe is enough — resolve without running.
        let tree = figure_tree();
        assert_eq!(
            ProbabilisticRelation::correlation_class(&tree),
            CorrelationClass::Tree
        );
        // Small tree: stays exact.
        assert_eq!(
            RankQuery::pt(100).resolve_algorithm(&tree).unwrap(),
            Algorithm::ExactGf
        );
    }

    /// A small tree that is *not* in x-tuple form (nested ∧ under ∨).
    fn figure_tree() -> AndXorTree {
        use prf_pdb::{NodeKind, TreeBuilder};
        let mut b = TreeBuilder::new(NodeKind::Xor);
        let root = b.root();
        let a = b.add_inner(root, NodeKind::And, 0.6).unwrap();
        b.add_leaf(a, 1.0, 10.0).unwrap();
        b.add_leaf(a, 1.0, 9.0).unwrap();
        b.add_leaf(root, 0.4, 8.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn weighted_consensus_via_prf_matches_tabulated_direct() {
        let db = db();
        let w = TabulatedWeight::from_real(&[2.0, 1.0, 0.5]);
        let direct = crate::independent::prf_rank(&db, &w);
        let r = RankQuery::prf(w)
            .value_order(ValueOrder::RealPart)
            .run(&db)
            .unwrap();
        assert_eq!(r.values.as_complex().unwrap(), &direct[..]);
    }

    #[test]
    fn prf_exponential_weight_equals_prfe() {
        let db = db();
        let via_prf = RankQuery::prf(ExponentialWeight::real(0.7))
            .run(&db)
            .unwrap();
        let via_prfe = RankQuery::prfe(0.7)
            .algorithm(Algorithm::ExactGf)
            .run(&db)
            .unwrap();
        let a = via_prf.values.as_complex().unwrap();
        let b = via_prfe.values.as_complex().unwrap();
        for t in 0..db.len() {
            assert!(a[t].approx_eq(b[t], 1e-10), "t{t}");
        }
        assert_eq!(via_prf.ranking.order(), via_prfe.ranking.order());
    }

    #[test]
    fn empty_relation() {
        let db = IndependentDb::from_pairs(std::iter::empty::<(f64, f64)>()).unwrap();
        let r = RankQuery::prfe(0.5).run(&db).unwrap();
        assert!(r.values.is_empty());
        assert!(r.ranking.is_empty());
    }

    /// The α-aware exact ceiling: `min(4096, 620/−ln α)` for real
    /// α ∈ (0, 1), the legacy 1024 otherwise — and `Auto` must route
    /// accordingly on independent relations.
    #[test]
    fn auto_prfe_threshold_is_alpha_aware() {
        assert_eq!(auto_prfe_exact_max(Complex::real(0.01)), 134);
        assert_eq!(auto_prfe_exact_max(Complex::real(0.1)), 269);
        assert_eq!(auto_prfe_exact_max(Complex::real(0.5)), 894);
        // Near 1 the bound grows past the cap; past 1 or complex α fall
        // back to the legacy ceiling.
        assert_eq!(auto_prfe_exact_max(Complex::real(0.9)), 4096);
        assert_eq!(auto_prfe_exact_max(Complex::real(1.5)), 1024);
        assert_eq!(auto_prfe_exact_max(Complex::new(0.5, 0.1)), 1024);

        // n = 500: plain complex is unsafe at α = 0.01 (divergence was
        // measured at n* = 847, the bound trips at 134) but fine at
        // α = 0.5 (bound 894).
        let db = IndependentDb::from_pairs((0..500).map(|i| (500.0 - i as f64, 0.5))).unwrap();
        let resolve = |a: f64| RankQuery::prfe(a).resolve_algorithm(&db).unwrap();
        assert_eq!(resolve(0.01), Algorithm::LogDomain);
        assert_eq!(resolve(0.5), Algorithm::ExactGf);
    }
}
