//! Prepared relations: amortizing per-walk setup across repeated queries.
//!
//! Every walk kernel in the engine starts the same way — sort the tuples by
//! score, compile the tree into an [`EvalPlan`](crate::incremental::EvalPlan),
//! gather marginals — and then throws that work away when the walk returns.
//! A one-shot query cannot avoid it, but a *server* evaluating thousands of
//! flushes against the same registered relation pays the `O(n log n)` sort
//! and `O(tree)` plan compilation over and over for identical inputs.
//!
//! [`PreparedRelation`] fixes that: it wraps any
//! [`ProbabilisticRelation`] together with the backend's reusable state
//! (built once by [`ProbabilisticRelation::prepare`]) and implements the
//! trait itself, threading the cached state into every walk. Callers —
//! [`RankQuery::run`](super::RankQuery::run), [`QueryBatch`](super::QueryBatch),
//! the `prf-serve` flush pool — need no new API: a `&PreparedRelation` is a
//! relation, just one whose sorts and plans are already built.
//!
//! Backends without cacheable setup (e.g. `prf-graphical`'s junction-tree
//! adapter, whose ranking cost is dominated by message passing) return the
//! empty [`PreparedState`] and behave exactly as before.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};

use prf_numeric::{Complex, Scaled};
use prf_pdb::TupleId;

use super::batch::{SharedAnswer, SharedRequest, SharedWalkOut, SharedWalkSpec};
use super::kernels;
use super::relation::{CorrelationClass, ProbabilisticRelation};
use super::QueryError;
use crate::incremental::GfStats;
use crate::tree::TreePrepared;
use crate::weights::WeightFunction;

// ---------------------------------------------------------------------
// PreparedState: the backend-built cache
// ---------------------------------------------------------------------

/// Opaque reusable evaluation state built by
/// [`ProbabilisticRelation::prepare`] — the score sort, compiled plan, and
/// marginals a backend's walk kernels would otherwise rebuild per call.
///
/// The state is backend-private: callers hold it and hand it back through
/// [`ProbabilisticRelation::run_shared_walk_prepared`] /
/// [`ProbabilisticRelation::prf_values_prepared`], they never inspect it.
/// Backends receiving a foreign state (another backend's, or
/// [`PreparedState::empty`]) must fall back to their unprepared paths.
#[derive(Clone)]
pub struct PreparedState {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    /// No cacheable setup — every prepared hook falls back.
    Empty,
    /// And/xor tree: score order + positions + marginals + compiled plan.
    Tree(TreePrepared),
    /// Independent relation: the descending score order (the only setup
    /// its closed-form kernels repeat per call).
    Independent(Vec<TupleId>),
    /// Sharded relation: one prepared state per shard, in shard order.
    /// `Arc`-wrapped so shard-worker jobs (which need `'static` captures)
    /// can share them without cloning a compiled plan.
    Sharded(Vec<Arc<PreparedState>>),
}

impl PreparedState {
    /// The empty state: nothing cached, every prepared hook falls back to
    /// its unprepared path. The default for backends without reusable
    /// setup.
    pub fn empty() -> Self {
        PreparedState {
            inner: Inner::Empty,
        }
    }

    /// `true` when the state caches nothing.
    pub fn is_empty(&self) -> bool {
        matches!(self.inner, Inner::Empty)
    }

    pub(crate) fn tree(tp: TreePrepared) -> Self {
        PreparedState {
            inner: Inner::Tree(tp),
        }
    }

    pub(crate) fn independent(order: Vec<TupleId>) -> Self {
        PreparedState {
            inner: Inner::Independent(order),
        }
    }

    pub(crate) fn tree_prepared(&self) -> Option<&TreePrepared> {
        match &self.inner {
            Inner::Tree(tp) => Some(tp),
            _ => None,
        }
    }

    pub(crate) fn independent_order(&self) -> Option<&[TupleId]> {
        match &self.inner {
            Inner::Independent(order) => Some(order),
            _ => None,
        }
    }

    pub(crate) fn sharded(states: Vec<Arc<PreparedState>>) -> Self {
        PreparedState {
            inner: Inner::Sharded(states),
        }
    }

    pub(crate) fn sharded_states(&self) -> Option<&[Arc<PreparedState>]> {
        match &self.inner {
            Inner::Sharded(states) => Some(states),
            _ => None,
        }
    }

    pub(crate) fn tree_prepared_mut(&mut self) -> Option<&mut TreePrepared> {
        match &mut self.inner {
            Inner::Tree(tp) => Some(tp),
            _ => None,
        }
    }

    pub(crate) fn independent_order_mut(&mut self) -> Option<&mut Vec<TupleId>> {
        match &mut self.inner {
            Inner::Independent(order) => Some(order),
            _ => None,
        }
    }
}

impl std::fmt::Debug for PreparedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Empty => f.write_str("PreparedState::Empty"),
            Inner::Tree(tp) => write!(f, "PreparedState::Tree({} tuples)", tp.order.len()),
            Inner::Independent(order) => {
                write!(f, "PreparedState::Independent({} tuples)", order.len())
            }
            Inner::Sharded(states) => {
                write!(f, "PreparedState::Sharded({} shards)", states.len())
            }
        }
    }
}

// ---------------------------------------------------------------------
// PreparedRelation: a relation whose setup is already paid
// ---------------------------------------------------------------------

/// A [`ProbabilisticRelation`] bundled with its backend's prepared state,
/// built **once** at construction and reused by every query.
///
/// `PreparedRelation` implements `ProbabilisticRelation` itself, so it
/// drops into every existing entry point — [`RankQuery::run`],
/// [`QueryBatch::run`](super::QueryBatch::run), `prf-serve` registration —
/// and repeated queries against it skip the per-call sort/plan rebuild:
///
/// ```
/// use std::sync::Arc;
/// use prf_core::query::{PreparedRelation, RankQuery};
/// use prf_pdb::IndependentDb;
///
/// let db = IndependentDb::from_pairs([(10.0, 0.5), (5.0, 0.4)]).unwrap();
/// let prepared = PreparedRelation::new(Arc::new(db));
/// // The score sort happened once, above; these queries reuse it.
/// let a = RankQuery::pt(2).run(&prepared)?;
/// let b = RankQuery::prfe(0.9).run(&prepared)?;
/// assert_eq!(a.ranking.order().len(), 2);
/// assert_eq!(b.ranking.order().len(), 2);
/// # Ok::<(), prf_core::query::QueryError>(())
/// ```
///
/// Answers are **identical** to querying the wrapped relation directly —
/// preparation changes where the setup cost is paid, never the numbers
/// (pinned by the `prepared_equivalence` differential suite).
///
/// # Staleness
///
/// The cached state is keyed by the wrapped relation's
/// [`ProbabilisticRelation::generation`] counter. Immutable backends never
/// move it, so the state built at construction lives forever; a mutable
/// backend (one bumping its generation, e.g. via interior mutability or
/// [`crate::live::LiveRelation`]) triggers a transparent re-prepare on the
/// next query instead of being served a stale sort/plan/marginal cache.
///
/// [`RankQuery::run`]: super::RankQuery::run
pub struct PreparedRelation {
    rel: Arc<dyn ProbabilisticRelation + Send + Sync>,
    state: RwLock<PreparedState>,
    /// The `rel.generation()` the cached state was built from.
    ///
    /// Invariant: `seen_generation` is never *newer* than the state it
    /// labels. Both rebuild sites ([`PreparedRelation::new`] and the
    /// refresh in `snapshot`) read the generation **before** calling
    /// `rel.prepare()`, so a mutation racing the rebuild at worst tags a
    /// post-mutation snapshot with a pre-mutation generation — causing one
    /// harmless extra re-prepare on the next query, never staleness. (The
    /// opposite order would label a pre-mutation snapshot as current and
    /// serve a stale sort/plan forever; pinned by the
    /// `mutation_racing_a_rebuild_never_labels_state_too_new` regression
    /// test.)
    seen_generation: AtomicU64,
}

impl PreparedRelation {
    /// Prepares `rel`: builds its reusable state (sort, plan, marginals)
    /// once. `O(n log n + tree)` for the built-in backends.
    pub fn new(rel: Arc<dyn ProbabilisticRelation + Send + Sync>) -> Self {
        let generation = rel.generation();
        let state = rel.prepare();
        PreparedRelation {
            rel,
            state: RwLock::new(state),
            seen_generation: AtomicU64::new(generation),
        }
    }

    /// Convenience: prepare an owned relation (wraps it in an [`Arc`]).
    pub fn from_relation<R>(rel: R) -> Self
    where
        R: ProbabilisticRelation + Send + Sync + 'static,
    {
        Self::new(Arc::new(rel))
    }

    /// The wrapped relation.
    pub fn relation(&self) -> &Arc<dyn ProbabilisticRelation + Send + Sync> {
        &self.rel
    }

    /// The cached state ([`PreparedState::is_empty`] when the backend has
    /// no reusable setup), refreshed first if the wrapped relation's
    /// generation moved since it was built.
    pub fn state(&self) -> RwLockReadGuard<'_, PreparedState> {
        self.snapshot()
    }

    /// A read guard over state that is current for `rel.generation()`;
    /// re-prepares under the write lock when the generation moved.
    fn snapshot(&self) -> RwLockReadGuard<'_, PreparedState> {
        if self.rel.generation() != self.seen_generation.load(Ordering::Acquire) {
            let mut state = self
                .state
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Re-check: another thread may have refreshed while we waited.
            // The generation MUST be read before `prepare()` (see the
            // `seen_generation` invariant): a mutation landing mid-prepare
            // then re-triggers a refresh instead of being masked.
            let generation = self.rel.generation();
            if generation != self.seen_generation.load(Ordering::Acquire) {
                *state = self.rel.prepare();
                self.seen_generation.store(generation, Ordering::Release);
            }
        }
        self.state
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Serves one request through the prepared shared walk, or `None` when
    /// the backend has no shared kernel (the caller then falls back to the
    /// backend's single kernel — correct, just unamortized).
    fn one_request_walk(&self, req: SharedRequest) -> Option<(SharedAnswer, Option<GfStats>)> {
        let spec = SharedWalkSpec {
            requests: vec![req],
            threads: None,
            cancel: None,
        };
        let mut out: SharedWalkOut = self.rel.run_shared_walk_prepared(&spec, &self.snapshot())?;
        debug_assert_eq!(out.answers.len(), 1);
        Some((out.answers.pop()?, out.stats))
    }
}

impl std::fmt::Debug for PreparedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedRelation")
            .field("n_tuples", &self.rel.n_tuples())
            .field("class", &self.rel.correlation_class())
            .field("state", &*self.snapshot())
            .finish()
    }
}

impl ProbabilisticRelation for PreparedRelation {
    fn n_tuples(&self) -> usize {
        self.rel.n_tuples()
    }

    fn tuple_scores(&self) -> Vec<f64> {
        self.rel.tuple_scores()
    }

    fn tuple_marginals(&self) -> Vec<f64> {
        self.rel.tuple_marginals()
    }

    fn correlation_class(&self) -> CorrelationClass {
        self.rel.correlation_class()
    }

    fn prf_values(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> Vec<Complex> {
        self.prf_values_with_stats(omega, threads).0
    }

    fn prf_values_with_stats(
        &self,
        omega: &(dyn WeightFunction + Sync),
        threads: Option<usize>,
    ) -> (Vec<Complex>, Option<GfStats>) {
        self.rel
            .prf_values_prepared(omega, threads, &self.snapshot())
    }

    fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
        self.prfe_values_with_stats(alpha).0
    }

    fn prfe_values_with_stats(&self, alpha: Complex) -> (Vec<Complex>, Option<GfStats>) {
        match self.one_request_walk(SharedRequest::PrfeComplex(alpha)) {
            Some((SharedAnswer::Complex(v), stats)) => (v, stats),
            _ => self.rel.prfe_values_with_stats(alpha),
        }
    }

    fn prfe_values_scaled(&self, alpha: Complex) -> Vec<Scaled<Complex>> {
        self.prfe_values_scaled_with_stats(alpha).0
    }

    fn prfe_values_scaled_with_stats(
        &self,
        alpha: Complex,
    ) -> (Vec<Scaled<Complex>>, Option<GfStats>) {
        match self.one_request_walk(SharedRequest::PrfeScaled(alpha)) {
            Some((SharedAnswer::Scaled(v), stats)) => (v, stats),
            _ => self.rel.prfe_values_scaled_with_stats(alpha),
        }
    }

    fn prfe_log_keys(&self, alpha: f64) -> Vec<f64> {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "log-domain PRFe requires α ∈ [0, 1], got {alpha}"
        );
        match self.one_request_walk(SharedRequest::PrfeLog(alpha)) {
            Some((SharedAnswer::Log(v), _)) => v,
            _ => self.rel.prfe_log_keys(alpha),
        }
    }

    fn prfe_log_ranked(&self, alpha: f64) -> Option<(Vec<f64>, Vec<TupleId>)> {
        // The shared walk answers keys, never an order; the inner relation
        // (a live cache, say) is the only party that can beat the sort.
        self.rel.prfe_log_ranked(alpha)
    }

    fn expected_ranks(&self) -> Option<Vec<f64>> {
        match self.one_request_walk(SharedRequest::ExpectedRanks) {
            Some((SharedAnswer::Ranks(v), _)) => Some(v),
            _ => self.rel.expected_ranks(),
        }
    }

    fn most_probable_topk(&self, k: usize) -> Result<(Vec<TupleId>, f64), QueryError> {
        self.rel.most_probable_topk(k)
    }

    fn positional_candidates(&self, k: usize) -> kernels::PositionalCandidates {
        self.rel.positional_candidates(k)
    }

    fn generation(&self) -> u64 {
        self.rel.generation()
    }

    fn run_shared_walk(&self, spec: &SharedWalkSpec) -> Option<SharedWalkOut> {
        self.rel.run_shared_walk_prepared(spec, &self.snapshot())
    }

    fn run_shared_walk_prepared(
        &self,
        spec: &SharedWalkSpec,
        _prep: &PreparedState,
    ) -> Option<SharedWalkOut> {
        // Our own state always wins: a foreign state cannot describe the
        // wrapped relation better than the one built from it.
        self.rel.run_shared_walk_prepared(spec, &self.snapshot())
    }

    fn prepare(&self) -> PreparedState {
        // Already prepared; re-wrapping finds nothing new to cache (the
        // overrides above keep routing through the existing state).
        PreparedState::empty()
    }

    fn prf_values_prepared(
        &self,
        omega: &(dyn WeightFunction + Sync),
        _threads: Option<usize>,
        _prep: &PreparedState,
    ) -> (Vec<Complex>, Option<GfStats>) {
        self.rel
            .prf_values_prepared(omega, _threads, &self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryBatch, RankQuery, Semantics};
    use crate::weights::StepWeight;
    use prf_pdb::{AndXorTree, IndependentDb};

    fn assert_complex_eq(a: &[Complex], b: &[Complex], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.approx_eq(*y, 1e-12), "{ctx}: tuple {i}: {x} vs {y}");
        }
    }

    #[test]
    fn prepared_state_reports_backend() {
        let db = IndependentDb::from_pairs([(10.0, 0.5), (5.0, 0.4)]).unwrap();
        assert!(ProbabilisticRelation::prepare(&db)
            .independent_order()
            .is_some());
        let tree = AndXorTree::from_x_tuples(&[vec![(10.0, 0.5)], vec![(5.0, 0.4)]]).unwrap();
        assert!(ProbabilisticRelation::prepare(&tree)
            .tree_prepared()
            .is_some());
        assert!(PreparedState::empty().is_empty());
    }

    #[test]
    fn prepared_independent_matches_unprepared() {
        let db = IndependentDb::from_pairs([
            (10.0, 0.5),
            (9.0, 0.25),
            (8.0, 0.9),
            (7.0, 0.1),
            (6.0, 0.75),
        ])
        .unwrap();
        let prepared = PreparedRelation::from_relation(db.clone());
        let w = StepWeight { h: 3 };
        assert_complex_eq(
            &prepared.prf_values(&w, None),
            &db.prf_values(&w, None),
            "prf",
        );
        let alpha = Complex::real(0.9);
        assert_complex_eq(&prepared.prfe_values(alpha), &db.prfe_values(alpha), "prfe");
        assert_eq!(prepared.prfe_log_keys(0.9), db.prfe_log_keys(0.9));
        assert_eq!(prepared.expected_ranks(), db.expected_ranks());
    }

    #[test]
    fn prepared_tree_matches_unprepared_across_reuse() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.4), (9.0, 0.3)],
            vec![(8.0, 0.9)],
            vec![(7.0, 0.5), (6.0, 0.2), (5.0, 0.1)],
        ])
        .unwrap();
        let prepared = PreparedRelation::from_relation(tree.clone());
        // Reuse the same prepared state across several queries and a batch.
        for h in [1usize, 2, 5] {
            let w = StepWeight { h };
            assert_complex_eq(
                &prepared.prf_values(&w, None),
                &ProbabilisticRelation::prf_values(&tree, &w, None),
                &format!("prf h={h}"),
            );
        }
        let direct = QueryBatch::new()
            .add(Semantics::Pt(2))
            .add(Semantics::ERank)
            .run(&tree)
            .unwrap();
        let via_prepared = QueryBatch::new()
            .add(Semantics::Pt(2))
            .add(Semantics::ERank)
            .run(&prepared)
            .unwrap();
        for (d, p) in direct.iter().zip(&via_prepared) {
            assert_eq!(d.ranking.order(), p.ranking.order());
        }
        // Single queries keep working after batch reuse.
        let q = RankQuery::prfe(0.7).run(&prepared).unwrap();
        let qd = RankQuery::prfe(0.7).run(&tree).unwrap();
        assert_eq!(q.ranking.order(), qd.ranking.order());
    }

    #[test]
    fn generation_bump_invalidates_cached_state() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;

        // A mutable backend whose *scores* can change: the cached
        // descending order goes genuinely stale, so serving it would
        // produce wrong PRF values — the generation bump must force a
        // re-prepare.
        struct Versioned {
            db: Mutex<IndependentDb>,
            generation: AtomicU64,
        }
        impl Versioned {
            fn swap(&self, db: IndependentDb) {
                *self.db.lock().unwrap() = db;
                self.generation.fetch_add(1, Ordering::Release);
            }
        }
        impl ProbabilisticRelation for Versioned {
            fn n_tuples(&self) -> usize {
                self.db.lock().unwrap().len()
            }
            fn tuple_scores(&self) -> Vec<f64> {
                self.db.lock().unwrap().scores()
            }
            fn tuple_marginals(&self) -> Vec<f64> {
                self.db.lock().unwrap().probabilities()
            }
            fn correlation_class(&self) -> CorrelationClass {
                CorrelationClass::Independent
            }
            fn prf_values(
                &self,
                omega: &(dyn crate::weights::WeightFunction + Sync),
                threads: Option<usize>,
            ) -> Vec<Complex> {
                self.db.lock().unwrap().prf_values(omega, threads)
            }
            fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
                self.db.lock().unwrap().prfe_values(alpha)
            }
            fn generation(&self) -> u64 {
                self.generation.load(Ordering::Acquire)
            }
            fn prepare(&self) -> PreparedState {
                ProbabilisticRelation::prepare(&*self.db.lock().unwrap())
            }
            fn run_shared_walk_prepared(
                &self,
                spec: &SharedWalkSpec,
                prep: &PreparedState,
            ) -> Option<SharedWalkOut> {
                self.db.lock().unwrap().run_shared_walk_prepared(spec, prep)
            }
            fn prf_values_prepared(
                &self,
                omega: &(dyn crate::weights::WeightFunction + Sync),
                threads: Option<usize>,
                prep: &PreparedState,
            ) -> (Vec<Complex>, Option<GfStats>) {
                self.db
                    .lock()
                    .unwrap()
                    .prf_values_prepared(omega, threads, prep)
            }
        }

        let v1 = IndependentDb::from_pairs([(10.0, 0.9), (5.0, 0.4), (1.0, 0.7)]).unwrap();
        // Same tuple count, permuted scores: a stale order is silently
        // wrong (no length guard can catch it).
        let v2 = IndependentDb::from_pairs([(1.0, 0.9), (5.0, 0.4), (10.0, 0.7)]).unwrap();
        let rel = Arc::new(Versioned {
            db: Mutex::new(v1),
            generation: AtomicU64::new(0),
        });
        let prepared = PreparedRelation::new(rel.clone());
        let w = StepWeight { h: 1 };
        assert_complex_eq(
            &prepared.prf_values(&w, None),
            &rel.db.lock().unwrap().prf_values(&w, None),
            "v1",
        );
        rel.swap(v2);
        // The wrapper must rebuild its state and agree with a direct query.
        let direct = rel.db.lock().unwrap().prf_values(&w, None);
        assert_complex_eq(&prepared.prf_values(&w, None), &direct, "v2");
        assert_eq!(ProbabilisticRelation::generation(&prepared), 1);
    }

    /// Regression test for the generation/prepare race: when a mutation
    /// lands *during* `prepare()` — the snapshot describes the pre-swap
    /// relation while the generation counter has already moved on — the
    /// wrapper must tag the state with the generation read *before* the
    /// snapshot, so the next query re-prepares instead of serving the
    /// stale sort forever. (Recording the post-prepare generation would
    /// label the pre-swap snapshot as current: silent staleness.)
    #[test]
    fn mutation_racing_a_rebuild_never_labels_state_too_new() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;

        struct RacingPrepare {
            db: Mutex<IndependentDb>,
            generation: AtomicU64,
            /// Databases swapped in mid-`prepare()`, one per call: the
            /// returned state then describes the relation from *before*
            /// the swap while the generation already counts it.
            swap_mid_prepare: Mutex<Vec<IndependentDb>>,
        }
        impl RacingPrepare {
            fn swap(&self, db: IndependentDb) {
                *self.db.lock().unwrap() = db;
                self.generation.fetch_add(1, Ordering::Release);
            }
        }
        impl ProbabilisticRelation for RacingPrepare {
            fn n_tuples(&self) -> usize {
                self.db.lock().unwrap().len()
            }
            fn tuple_scores(&self) -> Vec<f64> {
                self.db.lock().unwrap().scores()
            }
            fn tuple_marginals(&self) -> Vec<f64> {
                self.db.lock().unwrap().probabilities()
            }
            fn correlation_class(&self) -> CorrelationClass {
                CorrelationClass::Independent
            }
            fn prf_values(
                &self,
                omega: &(dyn crate::weights::WeightFunction + Sync),
                threads: Option<usize>,
            ) -> Vec<Complex> {
                self.db.lock().unwrap().prf_values(omega, threads)
            }
            fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
                self.db.lock().unwrap().prfe_values(alpha)
            }
            fn generation(&self) -> u64 {
                self.generation.load(Ordering::Acquire)
            }
            fn prepare(&self) -> PreparedState {
                let state = ProbabilisticRelation::prepare(&*self.db.lock().unwrap());
                if let Some(next) = self.swap_mid_prepare.lock().unwrap().pop() {
                    self.swap(next);
                }
                state // describes the pre-swap relation
            }
            fn run_shared_walk_prepared(
                &self,
                spec: &SharedWalkSpec,
                prep: &PreparedState,
            ) -> Option<SharedWalkOut> {
                self.db.lock().unwrap().run_shared_walk_prepared(spec, prep)
            }
            fn prf_values_prepared(
                &self,
                omega: &(dyn crate::weights::WeightFunction + Sync),
                threads: Option<usize>,
                prep: &PreparedState,
            ) -> (Vec<Complex>, Option<GfStats>) {
                self.db
                    .lock()
                    .unwrap()
                    .prf_values_prepared(omega, threads, prep)
            }
        }

        // v1 → v2 → v3 permute the same scores, so a stale cached order is
        // silently wrong (no length guard can catch it).
        let v1 = IndependentDb::from_pairs([(10.0, 0.9), (5.0, 0.4), (1.0, 0.7)]).unwrap();
        let v2 = IndependentDb::from_pairs([(1.0, 0.9), (10.0, 0.4), (5.0, 0.7)]).unwrap();
        let v3 = IndependentDb::from_pairs([(5.0, 0.9), (1.0, 0.4), (10.0, 0.7)]).unwrap();
        let rel = Arc::new(RacingPrepare {
            db: Mutex::new(v1),
            generation: AtomicU64::new(0),
            swap_mid_prepare: Mutex::new(vec![]),
        });
        let prepared = PreparedRelation::new(rel.clone());
        let w = StepWeight { h: 1 };

        // Mutation 1 applies normally; mutation 2 is armed to land in the
        // middle of the refresh that mutation 1 triggers.
        rel.swap(v2);
        rel.swap_mid_prepare.lock().unwrap().push(v3);
        let mid_race = prepared.prf_values(&w, None);
        assert_eq!(
            ProbabilisticRelation::generation(&prepared),
            2,
            "the armed swap fired during the refresh"
        );
        // That answer came from the v2 snapshot — current when the walk
        // was admitted (mutation 2 linearizes after it). The bug under
        // test is what happens *next*: the state must not be labeled with
        // the post-race generation.
        drop(mid_race);
        let direct = rel.db.lock().unwrap().prf_values(&w, None);
        assert_complex_eq(
            &prepared.prf_values(&w, None),
            &direct,
            "query after the race must re-prepare, not serve the stale v2 order",
        );
    }
}
