//! Backend-specific evaluation kernels for the set- and position-valued
//! semantics of the unified query engine.
//!
//! These algorithms originally lived in `prf-baselines` (`utop`, `urank`,
//! `erank`); they moved here so that [`super::RankQuery`] can evaluate every
//! [`super::Semantics`] without a dependency cycle, and the baseline crate's
//! free functions became thin wrappers over the engine.

use prf_numeric::Poly;
use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{AndXorTree, IndependentDb, TupleId, WorldEnumeration};

// ---------------------------------------------------------------------
// U-Rank: bounded per-position candidate lists
// ---------------------------------------------------------------------

/// Per-position bounded candidate lists: `candidates[j]` holds up to `k`
/// `(probability, tuple)` pairs with the largest `Pr(r(t) = j+1)`,
/// descending, ties broken by smaller tuple id.
///
/// `O(k²)` memory regardless of relation size: per position only the `k`
/// best candidates can ever be selected.
#[derive(Clone, Debug)]
pub struct PositionalCandidates {
    cap: usize,
    candidates: Vec<Vec<(f64, TupleId)>>,
}

impl PositionalCandidates {
    /// An empty table for `k` positions.
    pub fn new(k: usize) -> Self {
        PositionalCandidates {
            cap: k,
            candidates: vec![Vec::with_capacity(k + 1); k],
        }
    }

    /// Number of positions tracked.
    pub fn positions(&self) -> usize {
        self.candidates.len()
    }

    /// The candidate list of a (0-based) position, best first.
    pub fn at(&self, position: usize) -> &[(f64, TupleId)] {
        &self.candidates[position]
    }

    /// Records `Pr(r(t) = position+1) = prob`; zero-probability entries are
    /// ignored.
    pub fn push(&mut self, position: usize, prob: f64, t: TupleId) {
        if prob <= 0.0 {
            return;
        }
        let list = &mut self.candidates[position];
        // Insertion sort into a short descending list.
        let at = list
            .iter()
            .position(|&(p, tid)| (prob, std::cmp::Reverse(t)) > (p, std::cmp::Reverse(tid)))
            .unwrap_or(list.len());
        if at < self.cap {
            list.insert(at, (prob, t));
            list.truncate(self.cap);
        }
    }

    /// Greedy distinct selection (the Section 3.2 form of U-Rank): for each
    /// position in order, the best not-yet-used candidate, paired with its
    /// positional probability.
    pub fn select_distinct(&self) -> Vec<(f64, TupleId)> {
        let mut chosen: Vec<(f64, TupleId)> = Vec::with_capacity(self.candidates.len());
        for list in &self.candidates {
            if let Some(&(p, t)) = list
                .iter()
                .find(|&&(_, t)| !chosen.iter().any(|c| c.1 == t))
            {
                chosen.push((p, t));
            }
        }
        chosen
    }

    /// The raw per-position argmax (allowing duplicates) — the original
    /// U-Rank semantics. `None` when no tuple has positive probability at a
    /// position.
    pub fn select_with_duplicates(&self) -> Vec<Option<TupleId>> {
        self.candidates
            .iter()
            .map(|l| l.first().map(|&(_, t)| t))
            .collect()
    }
}

/// Candidate table for an independent relation: one `O(n·k + n log n)` pass
/// over the truncated prefix polynomial.
pub fn positional_candidates_independent(db: &IndependentDb, k: usize) -> PositionalCandidates {
    let mut table = PositionalCandidates::new(k);
    let order = sort_indices_by_score_desc(&db.scores());
    let mut g = Poly::one();
    for idx in order {
        let t = db.tuple(TupleId(idx as u32));
        for (m, &c) in g.coeffs().iter().enumerate().take(k) {
            table.push(m, c * t.prob, t.id);
        }
        g.mul_linear_in_place(1.0 - t.prob, t.prob, k);
    }
    table
}

/// Candidate table on an and/xor tree: the `O(n·k·log n)` x-tuple fast path
/// per position when available, otherwise one truncated symbolic expansion
/// per tuple.
pub fn positional_candidates_tree(tree: &AndXorTree, k: usize) -> PositionalCandidates {
    use crate::weights::PositionWeight;
    let n = tree.n_tuples();
    let mut table = PositionalCandidates::new(k);
    if tree.x_tuple_groups().is_some() {
        for j in 1..=k {
            let w = PositionWeight { j };
            let vals =
                crate::xtuple::prf_omega_rank_xtuple(tree, &w).expect("x-tuple form checked");
            for (t, v) in vals.iter().enumerate() {
                table.push(j - 1, v.re, TupleId(t as u32));
            }
        }
    } else {
        let (order, pos) = crate::tree::score_order(tree);
        for (i, &t) in order.iter().enumerate() {
            let gf = tree.generating_function(|u| {
                if u == t {
                    prf_numeric::RankPoly::y().with_cap(k)
                } else if pos[u.index()] < i {
                    prf_numeric::RankPoly::x().with_cap(k)
                } else {
                    prf_numeric::RankPoly::one().with_cap(k)
                }
            });
            for j in 1..=k.min(n) {
                table.push(j - 1, gf.rank_probability(j), t);
            }
        }
    }
    table
}

// ---------------------------------------------------------------------
// E-Rank: closed form for independent tuples
// ---------------------------------------------------------------------

/// Expected rank of every tuple in an independent relation (`O(n log n)`):
/// `er(t) = er₁ + er₂` with `er₁(tᵢ) = pᵢ·(1 + Σ_{j<i} pⱼ)` and
/// `er₂(t) = (1−p_t)(C − p_t)`, `C = Σ pⱼ` (Cormode et al.; Section 3.3).
/// Lower is better.
pub fn expected_ranks_independent(db: &IndependentDb) -> Vec<f64> {
    let n = db.len();
    let mut er = vec![0.0; n];
    let order = sort_indices_by_score_desc(&db.scores());
    let c: f64 = db.expected_world_size();
    let mut prefix = 0.0f64; // Σ of probabilities of higher-scored tuples
    for &idx in &order {
        let t = db.tuple(TupleId(idx as u32));
        let er1 = t.prob * (1.0 + prefix);
        let er2 = (1.0 - t.prob) * (c - t.prob);
        er[idx] = er1 + er2;
        prefix += t.prob;
    }
    er
}

// ---------------------------------------------------------------------
// U-Top: most probable top-k set
// ---------------------------------------------------------------------

/// Maintains the sum of the `m` largest values in a growing multiset, with
/// `m` adjustable downwards — a pair of heaps ("top" min-heap, "rest"
/// max-heap).
struct TopM {
    m: usize,
    top: std::collections::BinaryHeap<std::cmp::Reverse<OrdF64>>,
    rest: std::collections::BinaryHeap<OrdF64>,
    top_sum: f64,
}

#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN keys")
    }
}

impl TopM {
    fn new(m: usize) -> Self {
        TopM {
            m,
            top: Default::default(),
            rest: Default::default(),
            top_sum: 0.0,
        }
    }

    fn rebalance(&mut self) {
        while self.top.len() > self.m {
            let std::cmp::Reverse(v) = self.top.pop().expect("non-empty");
            self.top_sum -= v.0;
            self.rest.push(v);
        }
        while self.top.len() < self.m {
            match self.rest.pop() {
                Some(v) => {
                    self.top_sum += v.0;
                    self.top.push(std::cmp::Reverse(v));
                }
                None => break,
            }
        }
    }

    fn insert(&mut self, v: f64) {
        self.top.push(std::cmp::Reverse(OrdF64(v)));
        self.top_sum += v;
        self.rebalance();
    }

    fn shrink_m(&mut self) {
        assert!(self.m > 0, "cannot shrink below zero");
        self.m -= 1;
        self.rebalance();
    }

    /// Sum of the top `min(m, len)` values.
    fn sum(&self) -> f64 {
        self.top_sum
    }

    fn len_total(&self) -> usize {
        self.top.len() + self.rest.len()
    }
}

/// The exact U-Top answer on an independent relation (Soliman et al.): the
/// top-k set (score-descending order) and the natural log of its probability
/// of being the exact top-k — the `O(n log n)` odds-ratio sweep. Returns
/// `None` when `k` exceeds the number of tuples or no set has positive
/// probability.
pub fn most_probable_topk_independent(db: &IndependentDb, k: usize) -> Option<(Vec<TupleId>, f64)> {
    let n = db.len();
    if k == 0 || k > n {
        return None;
    }
    let order = sort_indices_by_score_desc(&db.scores());
    let probs: Vec<f64> = order
        .iter()
        .map(|&i| db.tuple(TupleId(i as u32)).prob)
        .collect();

    // Sweep the position of the lowest-scored member.
    let mut best: Option<(usize, f64)> = None; // (last position, log prob)
    let mut base = 0.0f64; // Σ_{j<i, p<1} ln(1−p_j)
    let mut forced = 0usize; // count of p=1 tuples above i
    let mut ratios = TopM::new(k - 1);

    for (i, &p_i) in probs.iter().enumerate() {
        if p_i > 0.0 && i + 1 >= k && forced < k {
            // Need k−1−forced optional members from the uncertain prefix.
            let need = k - 1 - forced;
            if ratios.len_total() >= need {
                // `ratios` is maintained with m = k−1−forced (see below), so
                // its sum is exactly what we need.
                debug_assert_eq!(ratios.m, need);
                let logp = base + ratios.sum() + p_i.ln();
                if best.is_none_or(|(_, b)| logp > b) {
                    best = Some((i, logp));
                }
            }
        }
        // Fold tuple i into the prefix structures.
        if p_i >= 1.0 {
            forced += 1;
            if forced > k - 1 {
                // Any further candidate set must include > k−1 certain
                // tuples above its last member — impossible; stop.
                break;
            }
            ratios.shrink_m();
        } else if p_i > 0.0 {
            base += (1.0 - p_i).ln();
            ratios.insert(p_i.ln() - (1.0 - p_i).ln());
        }
        // p_i == 0 tuples can never appear; they contribute nothing.
    }

    let (last_pos, logp) = best?;
    // Reconstruct: all certain tuples above last_pos, plus the top
    // (k−1−forced) odds ratios among uncertain ones, plus the last tuple.
    let mut forced_ids = Vec::new();
    let mut optional: Vec<(f64, usize)> = Vec::new();
    for (j, &p) in probs.iter().enumerate().take(last_pos) {
        if p >= 1.0 {
            forced_ids.push(j);
        } else if p > 0.0 {
            optional.push((p.ln() - (1.0 - p).ln(), j));
        }
    }
    optional.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN").then(a.1.cmp(&b.1)));
    let need = k - 1 - forced_ids.len();
    let mut members: Vec<usize> = forced_ids;
    members.extend(optional.into_iter().take(need).map(|(_, j)| j));
    members.push(last_pos);
    members.sort_unstable();
    Some((
        members
            .into_iter()
            .map(|pos| TupleId(order[pos] as u32))
            .collect(),
        logp,
    ))
}

/// Exact U-Top over an explicit world enumeration (the correlated-data
/// path): every world contributes its probability to its top-k set; the
/// highest-mass set wins, ties broken towards the lexicographically smaller
/// set. Returns the set (score-descending) and the ln of its probability.
pub fn most_probable_topk_enumerated(
    worlds: &WorldEnumeration,
    scores: &[f64],
    k: usize,
) -> Option<(Vec<TupleId>, f64)> {
    if k == 0 {
        return None;
    }
    let mut mass: std::collections::HashMap<Vec<TupleId>, f64> = std::collections::HashMap::new();
    for (w, p) in &worlds.worlds {
        if w.len() < k {
            continue;
        }
        *mass.entry(w.top_k(scores, k)).or_insert(0.0) += p;
    }
    mass.into_iter()
        .filter(|&(_, p)| p > 0.0)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(b.0.cmp(&a.0)))
        .map(|(set, p)| (set, p.ln()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_table_caps_and_orders() {
        let mut t = PositionalCandidates::new(2);
        t.push(0, 0.3, TupleId(0));
        t.push(0, 0.5, TupleId(1));
        t.push(0, 0.4, TupleId(2));
        t.push(0, 0.0, TupleId(3)); // ignored
        assert_eq!(t.at(0), &[(0.5, TupleId(1)), (0.4, TupleId(2))]);
        assert_eq!(t.positions(), 2);
    }

    #[test]
    fn distinct_selection_skips_used_tuples() {
        let mut t = PositionalCandidates::new(2);
        t.push(0, 0.9, TupleId(7));
        t.push(1, 0.8, TupleId(7));
        t.push(1, 0.2, TupleId(3));
        assert_eq!(
            t.select_distinct(),
            vec![(0.9, TupleId(7)), (0.2, TupleId(3))]
        );
        assert_eq!(
            t.select_with_duplicates(),
            vec![Some(TupleId(7)), Some(TupleId(7))]
        );
    }

    #[test]
    fn enumerated_utop_matches_independent_sweep() {
        let db =
            IndependentDb::from_pairs([(10.0, 0.4), (9.0, 0.9), (8.0, 0.5), (7.0, 0.7)]).unwrap();
        let worlds = db.enumerate_worlds(1 << 10).unwrap();
        let scores = db.scores();
        for k in 1..=3 {
            let (s1, lp1) = most_probable_topk_independent(&db, k).unwrap();
            let (s2, lp2) = most_probable_topk_enumerated(&worlds, &scores, k).unwrap();
            assert_eq!(s1, s2, "k={k}");
            assert!((lp1 - lp2).abs() < 1e-10, "k={k}: {lp1} vs {lp2}");
        }
    }
}
