//! Turning per-tuple Υ values into ranked answers.
//!
//! Definition 3: a top-k query returns the `k` tuples with the highest `|Υ|`
//! values. When Υ is real and non-negative (every classical special case),
//! `|Υ|` and `ℜ(Υ)` agree; PRFe-mixture approximations produce tiny spurious
//! imaginary parts and are ranked by real part instead ([`ValueOrder`]).

use prf_numeric::Complex;
use prf_pdb::TupleId;

/// How complex Υ values are mapped to the totally ordered ranking key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ValueOrder {
    /// Rank by `|Υ|` (the paper's Definition 3).
    #[default]
    Magnitude,
    /// Rank by `ℜ(Υ)` — appropriate for mixtures of conjugate PRFe terms,
    /// whose imaginary parts cancel up to rounding.
    RealPart,
}

impl ValueOrder {
    /// The ranking key of a Υ value.
    #[inline]
    pub fn key(self, v: Complex) -> f64 {
        match self {
            ValueOrder::Magnitude => v.abs(),
            ValueOrder::RealPart => v.re,
        }
    }
}

/// A complete ranking of tuples by Υ value.
#[derive(Clone, Debug)]
pub struct Ranking {
    /// Tuple ids ordered best-first.
    order: Vec<TupleId>,
    /// The ranking key of each tuple in [`Ranking::order`]'s order.
    keys: Vec<f64>,
}

impl Ranking {
    /// Ranks tuples by the given Υ values (indexed by tuple id), using
    /// `order`'s key and breaking ties by tuple id for determinism.
    pub fn from_values(values: &[Complex], order: ValueOrder) -> Self {
        let keys_by_id: Vec<f64> = values.iter().map(|&v| order.key(v)).collect();
        Self::from_keys(&keys_by_id)
    }

    /// The top-`k` prefix of [`Ranking::from_values`], without sorting the
    /// other `n − k` tuples — the batch engine's `top_k` pushdown.
    /// Identical (order and keys) to `from_values` followed by
    /// [`Ranking::truncate`]`(k)`.
    pub fn from_values_topk(values: &[Complex], order: ValueOrder, k: usize) -> Self {
        let keys_by_id: Vec<f64> = values.iter().map(|&v| order.key(v)).collect();
        Self::from_keys_topk(&keys_by_id, k)
    }

    /// Ranks tuples by pre-computed real keys (higher is better).
    pub fn from_keys(keys_by_id: &[f64]) -> Self {
        Self::from_keys_topk(keys_by_id, keys_by_id.len())
    }

    /// The top-`k` prefix of [`Ranking::from_keys`] via partial selection
    /// (`select_nth_unstable` + sorting only the selected prefix) —
    /// identical to the full sort followed by [`Ranking::truncate`]`(k)`
    /// because the comparator (key descending, ties by tuple id) is total.
    pub fn from_keys_topk(keys_by_id: &[f64], k: usize) -> Self {
        let idx = topk_indices(keys_by_id, k, "ranking keys must not be NaN");
        Ranking {
            keys: idx.iter().map(|&i| keys_by_id[i]).collect(),
            order: idx.into_iter().map(|i| TupleId(i as u32)).collect(),
        }
    }

    /// Ranks tuples by arbitrary partially ordered keys (higher is better,
    /// ties by tuple id). `display` maps each key to the `f64` reported by
    /// [`Ranking::key_at`] — used with exponent-carrying keys such as
    /// [`prf_numeric::scaled::SignedLogKey`] that cannot be collapsed into a
    /// single `f64` without losing precision.
    pub fn from_keys_by<K: PartialOrd + Copy>(
        keys_by_id: &[K],
        display: impl Fn(K) -> f64,
    ) -> Self {
        Self::from_keys_by_topk(keys_by_id, display, keys_by_id.len())
    }

    /// The top-`k` prefix of [`Ranking::from_keys_by`] via partial
    /// selection (see [`Ranking::from_keys_topk`]).
    pub fn from_keys_by_topk<K: PartialOrd + Copy>(
        keys_by_id: &[K],
        display: impl Fn(K) -> f64,
        k: usize,
    ) -> Self {
        let idx = topk_indices(keys_by_id, k, "ranking keys must be comparable");
        Ranking {
            keys: idx.iter().map(|&i| display(keys_by_id[i])).collect(),
            order: idx.into_iter().map(|i| TupleId(i as u32)).collect(),
        }
    }

    /// Builds a ranking from an explicit order and per-position keys —
    /// used by semantics whose answer is *constructed* rather than sorted
    /// (U-Rank's per-position argmax, U-Top's most probable set), where the
    /// keys need not be monotone along the order.
    ///
    /// # Panics
    /// Panics if `order` and `keys` have different lengths.
    pub fn from_order_and_keys(order: Vec<TupleId>, keys: Vec<f64>) -> Self {
        assert_eq!(
            order.len(),
            keys.len(),
            "order and keys must be parallel vectors"
        );
        Ranking { order, keys }
    }

    /// Truncates the ranking to its best `k` entries (no-op when `k` is
    /// not smaller than the current length).
    pub fn truncate(&mut self, k: usize) {
        self.order.truncate(k);
        self.keys.truncate(k);
    }

    /// The full order, best first.
    pub fn order(&self) -> &[TupleId] {
        &self.order
    }

    /// The top-`k` tuple ids.
    pub fn top_k(&self, k: usize) -> &[TupleId] {
        &self.order[..k.min(self.order.len())]
    }

    /// The top-`k` as raw `u32` ids — the form the metrics crate consumes.
    pub fn top_k_u32(&self, k: usize) -> Vec<u32> {
        self.top_k(k).iter().map(|t| t.0).collect()
    }

    /// The ranking key of the tuple at `position` (0-based).
    pub fn key_at(&self, position: usize) -> f64 {
        self.keys[position]
    }

    /// Position (0-based) of a tuple in the ranking.
    pub fn position_of(&self, t: TupleId) -> Option<usize> {
        self.order.iter().position(|&x| x == t)
    }

    /// Number of ranked tuples.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no tuples were ranked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Indices of the best `k` keys, ordered best-first (key descending, ties
/// by index ascending). `k ≥ len` degenerates to the full sorted index
/// vector; selection and sort use the *same* total comparator, so the
/// prefix is bitwise-identical to the full sort's.
fn topk_indices<K: PartialOrd + Copy>(keys_by_id: &[K], k: usize, expect: &str) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..keys_by_id.len()).collect();
    let cmp = |a: &usize, b: &usize| {
        keys_by_id[*b]
            .partial_cmp(&keys_by_id[*a])
            .expect(expect)
            .then(a.cmp(b))
    };
    if k < idx.len() {
        if k > 0 {
            // Partition so positions 0..k hold the best k (unordered).
            idx.select_nth_unstable_by(k - 1, cmp);
        }
        idx.truncate(k);
    }
    idx.sort_unstable_by(cmp);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_magnitude_with_id_ties() {
        let values = [
            Complex::real(1.0),
            Complex::real(-2.0), // |.|=2 ranks first
            Complex::real(1.0),  // ties with id 0 — id 0 wins
        ];
        let r = Ranking::from_values(&values, ValueOrder::Magnitude);
        assert_eq!(r.order(), &[TupleId(1), TupleId(0), TupleId(2)]);
        assert_eq!(r.top_k(2), &[TupleId(1), TupleId(0)]);
        assert_eq!(r.top_k_u32(2), vec![1, 0]);
        assert_eq!(r.key_at(0), 2.0);
        assert_eq!(r.position_of(TupleId(2)), Some(2));
    }

    #[test]
    fn real_part_order_differs_from_magnitude() {
        let values = [Complex::real(-2.0), Complex::real(1.0)];
        let mag = Ranking::from_values(&values, ValueOrder::Magnitude);
        let re = Ranking::from_values(&values, ValueOrder::RealPart);
        assert_eq!(mag.order()[0], TupleId(0));
        assert_eq!(re.order()[0], TupleId(1));
    }

    #[test]
    fn top_k_clamps() {
        let r = Ranking::from_keys(&[0.5, 0.2]);
        assert_eq!(r.top_k(10).len(), 2);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn topk_constructors_agree_with_full_sort_then_truncate() {
        // Includes duplicate keys, so the id tie-break is exercised: the
        // partial selection must produce the exact same prefix the full
        // sort does.
        let keys = [0.3, 0.9, 0.3, 0.0, 0.9, 0.5, 0.3, 1.0, 0.0];
        for k in 0..=keys.len() + 2 {
            let fast = Ranking::from_keys_topk(&keys, k);
            let mut full = Ranking::from_keys(&keys);
            full.truncate(k);
            assert_eq!(fast.order(), full.order(), "k={k}");
            for pos in 0..fast.len() {
                assert_eq!(fast.key_at(pos), full.key_at(pos), "k={k} pos={pos}");
            }
        }
    }

    #[test]
    fn topk_from_values_and_keys_by_agree_with_full() {
        let values = [
            Complex::real(1.0),
            Complex::new(0.0, -2.0),
            Complex::real(1.0),
            Complex::real(-0.5),
        ];
        for order in [ValueOrder::Magnitude, ValueOrder::RealPart] {
            for k in 0..=values.len() {
                let fast = Ranking::from_values_topk(&values, order, k);
                let mut full = Ranking::from_values(&values, order);
                full.truncate(k);
                assert_eq!(fast.order(), full.order(), "{order:?} k={k}");
            }
        }
        // The generic-key constructor, with a display transform.
        let raw = [3i64, 1, 3, 2];
        for k in 0..=raw.len() {
            let fast = Ranking::from_keys_by_topk(&raw, |v| v as f64, k);
            let mut full = Ranking::from_keys_by(&raw, |v| v as f64);
            full.truncate(k);
            assert_eq!(fast.order(), full.order(), "k={k}");
            for pos in 0..fast.len() {
                assert_eq!(fast.key_at(pos), full.key_at(pos));
            }
        }
    }
}
