//! Turning per-tuple Υ values into ranked answers.
//!
//! Definition 3: a top-k query returns the `k` tuples with the highest `|Υ|`
//! values. When Υ is real and non-negative (every classical special case),
//! `|Υ|` and `ℜ(Υ)` agree; PRFe-mixture approximations produce tiny spurious
//! imaginary parts and are ranked by real part instead ([`ValueOrder`]).

use prf_numeric::Complex;
use prf_pdb::TupleId;

/// How complex Υ values are mapped to the totally ordered ranking key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValueOrder {
    /// Rank by `|Υ|` (the paper's Definition 3).
    #[default]
    Magnitude,
    /// Rank by `ℜ(Υ)` — appropriate for mixtures of conjugate PRFe terms,
    /// whose imaginary parts cancel up to rounding.
    RealPart,
}

impl ValueOrder {
    /// The ranking key of a Υ value.
    #[inline]
    pub fn key(self, v: Complex) -> f64 {
        match self {
            ValueOrder::Magnitude => v.abs(),
            ValueOrder::RealPart => v.re,
        }
    }
}

/// A complete ranking of tuples by Υ value.
#[derive(Clone, Debug)]
pub struct Ranking {
    /// Tuple ids ordered best-first.
    order: Vec<TupleId>,
    /// The ranking key of each tuple in [`Ranking::order`]'s order.
    keys: Vec<f64>,
}

impl Ranking {
    /// Ranks tuples by the given Υ values (indexed by tuple id), using
    /// `order`'s key and breaking ties by tuple id for determinism.
    pub fn from_values(values: &[Complex], order: ValueOrder) -> Self {
        let keys_by_id: Vec<f64> = values.iter().map(|&v| order.key(v)).collect();
        Self::from_keys(&keys_by_id)
    }

    /// Ranks tuples by pre-computed real keys (higher is better).
    pub fn from_keys(keys_by_id: &[f64]) -> Self {
        let mut idx: Vec<usize> = (0..keys_by_id.len()).collect();
        idx.sort_by(|&a, &b| {
            keys_by_id[b]
                .partial_cmp(&keys_by_id[a])
                .expect("ranking keys must not be NaN")
                .then(a.cmp(&b))
        });
        Ranking {
            keys: idx.iter().map(|&i| keys_by_id[i]).collect(),
            order: idx.into_iter().map(|i| TupleId(i as u32)).collect(),
        }
    }

    /// Ranks tuples by arbitrary partially ordered keys (higher is better,
    /// ties by tuple id). `display` maps each key to the `f64` reported by
    /// [`Ranking::key_at`] — used with exponent-carrying keys such as
    /// [`prf_numeric::scaled::SignedLogKey`] that cannot be collapsed into a
    /// single `f64` without losing precision.
    pub fn from_keys_by<K: PartialOrd + Copy>(
        keys_by_id: &[K],
        display: impl Fn(K) -> f64,
    ) -> Self {
        let mut idx: Vec<usize> = (0..keys_by_id.len()).collect();
        idx.sort_by(|&a, &b| {
            keys_by_id[b]
                .partial_cmp(&keys_by_id[a])
                .expect("ranking keys must be comparable")
                .then(a.cmp(&b))
        });
        Ranking {
            keys: idx.iter().map(|&i| display(keys_by_id[i])).collect(),
            order: idx.into_iter().map(|i| TupleId(i as u32)).collect(),
        }
    }

    /// Builds a ranking from an explicit order and per-position keys —
    /// used by semantics whose answer is *constructed* rather than sorted
    /// (U-Rank's per-position argmax, U-Top's most probable set), where the
    /// keys need not be monotone along the order.
    ///
    /// # Panics
    /// Panics if `order` and `keys` have different lengths.
    pub fn from_order_and_keys(order: Vec<TupleId>, keys: Vec<f64>) -> Self {
        assert_eq!(
            order.len(),
            keys.len(),
            "order and keys must be parallel vectors"
        );
        Ranking { order, keys }
    }

    /// Truncates the ranking to its best `k` entries (no-op when `k` is
    /// not smaller than the current length).
    pub fn truncate(&mut self, k: usize) {
        self.order.truncate(k);
        self.keys.truncate(k);
    }

    /// The full order, best first.
    pub fn order(&self) -> &[TupleId] {
        &self.order
    }

    /// The top-`k` tuple ids.
    pub fn top_k(&self, k: usize) -> &[TupleId] {
        &self.order[..k.min(self.order.len())]
    }

    /// The top-`k` as raw `u32` ids — the form the metrics crate consumes.
    pub fn top_k_u32(&self, k: usize) -> Vec<u32> {
        self.top_k(k).iter().map(|t| t.0).collect()
    }

    /// The ranking key of the tuple at `position` (0-based).
    pub fn key_at(&self, position: usize) -> f64 {
        self.keys[position]
    }

    /// Position (0-based) of a tuple in the ranking.
    pub fn position_of(&self, t: TupleId) -> Option<usize> {
        self.order.iter().position(|&x| x == t)
    }

    /// Number of ranked tuples.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no tuples were ranked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_magnitude_with_id_ties() {
        let values = [
            Complex::real(1.0),
            Complex::real(-2.0), // |.|=2 ranks first
            Complex::real(1.0),  // ties with id 0 — id 0 wins
        ];
        let r = Ranking::from_values(&values, ValueOrder::Magnitude);
        assert_eq!(r.order(), &[TupleId(1), TupleId(0), TupleId(2)]);
        assert_eq!(r.top_k(2), &[TupleId(1), TupleId(0)]);
        assert_eq!(r.top_k_u32(2), vec![1, 0]);
        assert_eq!(r.key_at(0), 2.0);
        assert_eq!(r.position_of(TupleId(2)), Some(2));
    }

    #[test]
    fn real_part_order_differs_from_magnitude() {
        let values = [Complex::real(-2.0), Complex::real(1.0)];
        let mag = Ranking::from_values(&values, ValueOrder::Magnitude);
        let re = Ranking::from_values(&values, ValueOrder::RealPart);
        assert_eq!(mag.order()[0], TupleId(0));
        assert_eq!(re.order()[0], TupleId(1));
    }

    #[test]
    fn top_k_clamps() {
        let r = Ranking::from_keys(&[0.5, 0.2]);
        assert_eq!(r.top_k(10).len(), 2);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }
}
