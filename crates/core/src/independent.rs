//! Generating-function ranking over tuple-independent relations
//! (Section 4.1 and 4.3 of the paper).
//!
//! With tuples sorted by score descending (`t₁ … tₙ`) and
//! `Tᵢ = {t₁ … tᵢ}`, the generating function
//!
//! ```text
//! Fⁱ(x) = ( Π_{t ∈ Tᵢ₋₁} (1 − p(t) + p(t)·x) ) · p(tᵢ)·x
//! ```
//!
//! has `Pr(r(tᵢ) = j)` as its coefficient of `xʲ` (Algorithm 1). The prefix
//! product `Gᵢ(x) = Π_{t ∈ Tᵢ₋₁}(…)` is maintained incrementally — one
//! `O(i)` linear-factor multiplication per step — giving `O(n²)` for a
//! general PRF, `O(n·h)` for PRFω(h) (only the first `h` coefficients are
//! read), and `O(n)` for PRFe after sorting, since PRFe only needs the
//! *numeric value* `Gᵢ(α)`.
//!
//! Unlike Eq. (2) of the paper we never divide by `Pr(tᵢ₋₁)`, so zero
//! probabilities need no special-casing.

use prf_numeric::{Complex, GfValue, Poly, Scaled};
use prf_pdb::{IndependentDb, Tuple};

use crate::query::batch::{SharedAnswer, SharedRequest, SharedWalkOut, SharedWalkSpec};
use crate::weights::WeightFunction;

/// Υ values for every tuple under an arbitrary PRF weight function.
///
/// Dispatches to the truncated `O(n·h)` algorithm when
/// [`WeightFunction::truncation`] is available and to the full `O(n²)`
/// expansion otherwise. The result is indexed by tuple id.
///
/// ```
/// use prf_core::{prf_rank, StepWeight};
/// use prf_pdb::IndependentDb;
///
/// let db = IndependentDb::from_pairs([(30.0, 0.5), (20.0, 0.6), (10.0, 0.4)])?;
/// // PT(1): Υ(t) = Pr(r(t) = 1).
/// let v = prf_rank(&db, &StepWeight { h: 1 });
/// assert!((v[0].re - 0.5).abs() < 1e-12);          // top scorer: just its own probability
/// assert!((v[1].re - 0.5 * 0.6).abs() < 1e-12);    // needs t0 absent
/// # Ok::<(), prf_pdb::PdbError>(())
/// ```
pub fn prf_rank(db: &IndependentDb, omega: &dyn WeightFunction) -> Vec<Complex> {
    match omega.truncation() {
        Some(h) => prf_rank_truncated(db, omega, h),
        None => prf_rank_full(db, omega),
    }
}

/// Full `O(n²)` PRF evaluation (Algorithm 1, IND-PRF-RANK).
pub fn prf_rank_full(db: &IndependentDb, omega: &dyn WeightFunction) -> Vec<Complex> {
    prf_rank_truncated(db, omega, db.len())
}

/// Truncated `O(n·h)` PRF evaluation: coefficients of rank `> h` are never
/// materialised because `ω` vanishes there.
pub fn prf_rank_truncated(
    db: &IndependentDb,
    omega: &dyn WeightFunction,
    h: usize,
) -> Vec<Complex> {
    prf_rank_truncated_prepared(db, omega, h, &db.ids_by_score_desc())
}

/// [`prf_rank_truncated`] against a pre-sorted descending score order (see
/// [`batch_walk_independent_prepared`]).
pub(crate) fn prf_rank_truncated_prepared(
    db: &IndependentDb,
    omega: &dyn WeightFunction,
    h: usize,
    order: &[prf_pdb::TupleId],
) -> Vec<Complex> {
    let n = db.len();
    let mut result = vec![Complex::ZERO; n];
    if n == 0 || h == 0 {
        return result;
    }
    debug_assert_eq!(order.len(), n, "prepared order must cover the relation");
    // G holds the first h coefficients of Π (1 − p + p·x) over tuples seen
    // so far.
    let mut g = Poly::one();
    for &tid in order {
        let t = db.tuple(tid);
        // Υ(t) = p(t)·Σ_{j=1..h} ω(t, j)·G[j−1].
        let mut upsilon = Complex::ZERO;
        for (m, &c) in g.coeffs().iter().enumerate().take(h) {
            if c != 0.0 {
                upsilon += omega.weight(t, m + 1) * c;
            }
        }
        result[tid.index()] = upsilon * t.prob;
        g.mul_linear_in_place(1.0 - t.prob, t.prob, h);
    }
    result
}

/// The full positional-probability matrix: `result[t][j−1] = Pr(r(t) = j)`.
///
/// `O(n²)` time **and** memory — intended for moderate `n` (test oracles,
/// feature extraction for learning-to-rank on samples).
pub fn rank_distributions(db: &IndependentDb) -> Vec<Vec<f64>> {
    let n = db.len();
    let mut result = vec![Vec::new(); n];
    let order = db.ids_by_score_desc();
    let mut g = Poly::one();
    for &tid in &order {
        let t = db.tuple(tid);
        let mut dist = vec![0.0; n];
        for (m, &c) in g.coeffs().iter().enumerate() {
            if m < n {
                dist[m] = c * t.prob;
            }
        }
        result[tid.index()] = dist;
        g.mul_linear_in_place(1.0 - t.prob, t.prob, n);
    }
    result
}

/// PRFe(α) with a complex base: `O(n)` after sorting (Section 4.3).
///
/// Returns plain complex Υ values; for large `n` and `|α| < 1` these
/// underflow (they shrink like `|α|`-weighted products) — use
/// [`prfe_rank_scaled`] when the *full* ranking matters, not just the top.
///
/// ```
/// use prf_core::prfe_rank;
/// use prf_numeric::Complex;
/// use prf_pdb::IndependentDb;
///
/// // Example 5 of the paper: Υ(t₃) = F³(0.6) = 0.14592.
/// let db = IndependentDb::from_pairs([(30.0, 0.5), (20.0, 0.6), (10.0, 0.4)])?;
/// let v = prfe_rank(&db, Complex::real(0.6));
/// assert!((v[2].re - 0.14592).abs() < 1e-12);
/// # Ok::<(), prf_pdb::PdbError>(())
/// ```
pub fn prfe_rank(db: &IndependentDb, alpha: Complex) -> Vec<Complex> {
    let n = db.len();
    let mut result = vec![Complex::ZERO; n];
    let order = db.ids_by_score_desc();
    let mut g = Complex::ONE; // Gᵢ(α)
    for &tid in &order {
        let t = db.tuple(tid);
        result[tid.index()] = g * alpha * t.prob;
        g *= Complex::real(1.0 - t.prob) + alpha * t.prob;
    }
    result
}

/// PRFe(α) in scaled arithmetic: immune to underflow at any `n`.
///
/// Returns `Scaled<Complex>` Υ values whose
/// [`magnitude_key`](Scaled::magnitude_key) /
/// [`real_part_key`](prf_numeric::Scaled::real_part_key) give exact ranking
/// keys.
pub fn prfe_rank_scaled(db: &IndependentDb, alpha: Complex) -> Vec<Scaled<Complex>> {
    let n = db.len();
    let mut result = vec![Scaled::<Complex>::zero(); n];
    let order = db.ids_by_score_desc();
    let alpha_s = Scaled::new(alpha);
    let mut g = Scaled::<Complex>::one();
    for &tid in &order {
        let t = db.tuple(tid);
        result[tid.index()] = g.mul(&alpha_s).scale(t.prob);
        let factor = Scaled::new(Complex::real(1.0 - t.prob) + alpha * t.prob);
        g = g.mul(&factor);
    }
    result
}

/// Real-α PRFe ranking keys in log space: `ln Υ(tᵢ) = ln pᵢ + ln α +
/// Σ_{j<i} ln(1 − pⱼ + pⱼα)` — the cheapest underflow-free form
/// for `α ∈ (0, 1]`.
///
/// Tuples with `p = 0` (or `α = 0` beyond the first position) get
/// `-∞` keys. Returns keys indexed by tuple id; higher key = better rank.
pub fn prfe_rank_log(db: &IndependentDb, alpha: f64) -> Vec<f64> {
    assert!(
        (0.0..=1.0).contains(&alpha),
        "prfe_rank_log requires α ∈ [0, 1], got {alpha}"
    );
    let n = db.len();
    let mut result = vec![f64::NEG_INFINITY; n];
    let order = db.ids_by_score_desc();
    let mut log_g = 0.0f64;
    for &tid in &order {
        let t = db.tuple(tid);
        if t.prob > 0.0 && alpha > 0.0 && log_g > f64::NEG_INFINITY {
            result[tid.index()] = log_g + t.prob.ln() + alpha.ln();
        }
        let factor = 1.0 - t.prob + t.prob * alpha;
        log_g += factor.ln(); // ln(0) = -inf propagates correctly
    }
    result
}

/// Positional probabilities for *one* tuple (`O(n)` memory): used by
/// brute-force comparisons and by feature extraction.
pub fn rank_distribution_of(db: &IndependentDb, target: prf_pdb::TupleId) -> Vec<f64> {
    let n = db.len();
    let order = db.ids_by_score_desc();
    let mut g = Poly::one();
    for &tid in &order {
        let t = db.tuple(tid);
        if tid == target {
            let mut dist = vec![0.0; n];
            for (m, &c) in g.coeffs().iter().enumerate() {
                if m < n {
                    dist[m] = c * t.prob;
                }
            }
            return dist;
        }
        g.mul_linear_in_place(1.0 - t.prob, t.prob, n);
    }
    unreachable!("target tuple not in database");
}

/// Serves a whole batched-walk request set from **one** pass over the
/// score-sorted tuples — the independent-relation counterpart of
/// `crate::tree::batch_walk_tree`. One shared sort, one prefix polynomial
/// `G(x)` truncated at the *largest* weight horizon (every PRFω/PT
/// consumer reads its own prefix of the coefficients — a truncation view),
/// and one `O(1)`-per-step numeric accumulator per PRFe consumer in its
/// requested mode. Expected ranks use the closed form (it shares nothing
/// beyond the relation, but is `O(n log n)` and exact).
///
/// Per-consumer answers are bit-identical to the corresponding single
/// kernels ([`prf_rank`], [`prfe_rank`], [`prfe_rank_log`],
/// [`prfe_rank_scaled`], `expected_ranks_independent`): the loop bodies
/// are the same operations in the same order.
///
/// Returns `None` when the spec's cancellation token trips mid-walk (every
/// consumer gave up — see `SharedWalkSpec::cancel`).
pub(crate) fn batch_walk_independent(
    db: &IndependentDb,
    spec: &SharedWalkSpec,
) -> Option<SharedWalkOut> {
    batch_walk_independent_prepared(db, spec, &db.ids_by_score_desc())
}

/// [`batch_walk_independent`] against a pre-sorted score order: the
/// `O(n log n)` sort (which [`IndependentDb::ids_by_score_desc`] redoes on
/// every call) comes from the caller — a `PreparedRelation` amortizing it
/// across flushes. `order` must be the relation's full descending score
/// order.
pub(crate) fn batch_walk_independent_prepared(
    db: &IndependentDb,
    spec: &SharedWalkSpec,
    order: &[prf_pdb::TupleId],
) -> Option<SharedWalkOut> {
    let start = std::time::Instant::now();
    let n = db.len();
    debug_assert_eq!(order.len(), n, "prepared order must cover the relation");

    // Parse the requests into per-kind accumulators.
    enum Acc {
        /// (extraction cap) — reads the shared prefix polynomial.
        Weight(usize),
        /// Running `Gᵢ(α)` in plain complex arithmetic.
        Complex(Complex, Complex),
        /// Running `ln Gᵢ(α)`.
        Log(f64, f64),
        /// Running `Gᵢ(α)` in scaled arithmetic.
        Scaled(Scaled<Complex>, Scaled<Complex>, Complex),
        /// Closed form, filled in before the walk.
        Ranks,
    }
    let mut cap_max = 0usize;
    let mut accs: Vec<Acc> = spec
        .requests
        .iter()
        .map(|req| match req {
            SharedRequest::Weight(_) => {
                let c = req.weight_cap(n).expect("weight request has a cap");
                cap_max = cap_max.max(c);
                Acc::Weight(c)
            }
            SharedRequest::PrfeComplex(a) => Acc::Complex(Complex::ONE, *a),
            SharedRequest::PrfeLog(a) => {
                assert!(
                    (0.0..=1.0).contains(a),
                    "log-domain PRFe requires α ∈ [0, 1], got {a}"
                );
                Acc::Log(0.0, *a)
            }
            SharedRequest::PrfeScaled(a) => {
                Acc::Scaled(Scaled::<Complex>::one(), Scaled::new(*a), *a)
            }
            SharedRequest::ExpectedRanks => Acc::Ranks,
        })
        .collect();
    let weights: Vec<Option<&(dyn WeightFunction + Sync)>> = spec
        .requests
        .iter()
        .map(|req| match req {
            SharedRequest::Weight(w) => Some(w.as_ref() as &(dyn WeightFunction + Sync)),
            _ => None,
        })
        .collect();

    // One shared definition of the per-request buffer defaults (zero Υ,
    // `-∞` log keys) with the tree walk; expected ranks use the closed
    // form, filled in before the walk.
    let mut answers = crate::tree::BatchConsumers::answer_buffers(spec, n);
    for (req, answer) in spec.requests.iter().zip(&mut answers) {
        if matches!(req, SharedRequest::ExpectedRanks) {
            *answer = SharedAnswer::Ranks(crate::query::kernels::expected_ranks_independent(db));
        }
    }

    if n > 0 {
        // The shared prefix polynomial, capped at the largest horizon.
        let mut g_poly = Poly::one();
        for (step, &tid) in order.iter().enumerate() {
            // Cooperative cancellation: abandon the walk once every
            // consumer has given up (polled every 256 score steps).
            if step & 0xFF == 0 && spec.is_cancelled() {
                return None;
            }
            let t = db.tuple(tid);
            for ((acc, answer), omega) in accs.iter_mut().zip(&mut answers).zip(&weights) {
                match (acc, answer) {
                    (Acc::Weight(cap), SharedAnswer::Complex(buf)) => {
                        // Identical loop to `prf_rank_truncated`.
                        let omega = omega.expect("weight request has a weight");
                        let mut upsilon = Complex::ZERO;
                        for (m, &c) in g_poly.coeffs().iter().enumerate().take(*cap) {
                            if c != 0.0 {
                                upsilon += omega.weight(t, m + 1) * c;
                            }
                        }
                        buf[tid.index()] = upsilon * t.prob;
                    }
                    (Acc::Complex(g, alpha), SharedAnswer::Complex(buf)) => {
                        // Identical recurrence to `prfe_rank`.
                        buf[tid.index()] = *g * *alpha * t.prob;
                        *g *= Complex::real(1.0 - t.prob) + *alpha * t.prob;
                    }
                    (Acc::Log(log_g, alpha), SharedAnswer::Log(buf)) => {
                        // Identical recurrence to `prfe_rank_log`.
                        if t.prob > 0.0 && *alpha > 0.0 && *log_g > f64::NEG_INFINITY {
                            buf[tid.index()] = *log_g + t.prob.ln() + alpha.ln();
                        }
                        *log_g += (1.0 - t.prob + t.prob * *alpha).ln();
                    }
                    (Acc::Scaled(g, alpha_s, alpha), SharedAnswer::Scaled(buf)) => {
                        // Identical recurrence to `prfe_rank_scaled`.
                        buf[tid.index()] = g.mul(alpha_s).scale(t.prob);
                        let factor = Scaled::new(Complex::real(1.0 - t.prob) + *alpha * t.prob);
                        *g = g.mul(&factor);
                    }
                    (Acc::Ranks, SharedAnswer::Ranks(_)) => {} // closed form above
                    _ => unreachable!("accumulator shape matches answer shape"),
                }
            }
            g_poly.mul_linear_in_place(1.0 - t.prob, t.prob, cap_max.max(1));
        }
    }

    Some(SharedWalkOut {
        answers,
        stats: None, // closed-form kernels: no incremental evaluator
        walk_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Evaluates Υ from an explicit rank distribution — the textbook definition,
/// used as the oracle against the generating-function algorithms.
pub fn upsilon_from_distribution(
    tuple: &Tuple,
    dist: &[f64],
    omega: &dyn WeightFunction,
) -> Complex {
    let mut acc = Complex::ZERO;
    for (j0, &p) in dist.iter().enumerate() {
        if p != 0.0 {
            acc += omega.weight(tuple, j0 + 1) * p;
        }
    }
    acc
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays
mod tests {
    use super::*;
    use crate::weights::*;
    use prf_pdb::TupleId;

    fn example1_db() -> IndependentDb {
        IndependentDb::from_pairs([(30.0, 0.5), (20.0, 0.6), (10.0, 0.4)]).unwrap()
    }

    #[test]
    fn rank_distributions_match_example_1() {
        let db = example1_db();
        let d = rank_distributions(&db);
        // t3 (id 2): F³(x) = (.5+.5x)(.4+.6x)(.4x) → .08, .2, .12.
        assert!((d[2][0] - 0.08).abs() < 1e-12);
        assert!((d[2][1] - 0.20).abs() < 1e-12);
        assert!((d[2][2] - 0.12).abs() < 1e-12);
        // Each tuple's distribution sums to its probability.
        for (i, t) in db.tuples().iter().enumerate() {
            let sum: f64 = d[i].iter().sum();
            assert!((sum - t.prob).abs() < 1e-12);
        }
        // Single-tuple variant agrees.
        for i in 0..3 {
            let one = rank_distribution_of(&db, TupleId(i));
            assert_eq!(one, d[i as usize]);
        }
    }

    #[test]
    fn rank_distributions_match_brute_force() {
        let db = IndependentDb::from_pairs([
            (9.0, 0.3),
            (8.0, 1.0),
            (7.0, 0.0),
            (5.0, 0.9),
            (2.0, 0.55),
        ])
        .unwrap();
        let worlds = db.enumerate_worlds(1 << 20).unwrap();
        let scores = db.scores();
        let d = rank_distributions(&db);
        for i in 0..db.len() {
            let brute = worlds.rank_distribution(TupleId(i as u32), db.len(), &scores);
            for j in 0..db.len() {
                assert!(
                    (d[i][j] - brute[j]).abs() < 1e-12,
                    "tuple {i} rank {j}: {} vs {}",
                    d[i][j],
                    brute[j]
                );
            }
        }
    }

    #[test]
    fn prfe_matches_example_5() {
        // Example 5: Υ(t₃) = F³(0.6) = .14592 for ω(i) = .6^i.
        let db = example1_db();
        let u = prfe_rank(&db, Complex::real(0.6));
        assert!((u[2].re - 0.14592).abs() < 1e-12, "got {}", u[2].re);
        assert!(u[2].im.abs() < 1e-15);
    }

    #[test]
    fn prfe_agrees_with_generic_prf() {
        let db = IndependentDb::from_pairs([
            (10.0, 0.9),
            (9.0, 0.1),
            (8.0, 0.5),
            (7.0, 1.0),
            (6.0, 0.25),
        ])
        .unwrap();
        for &alpha in &[0.0, 0.3, 0.95, 1.0] {
            let fast = prfe_rank(&db, Complex::real(alpha));
            let generic = prf_rank(&db, &ExponentialWeight::real(alpha));
            for i in 0..db.len() {
                assert!(
                    fast[i].approx_eq(generic[i], 1e-10),
                    "α={alpha} tuple {i}: {} vs {}",
                    fast[i],
                    generic[i]
                );
            }
        }
        // Complex α as well.
        let alpha = Complex::new(0.4, 0.3);
        let fast = prfe_rank(&db, alpha);
        let generic = prf_rank(&db, &ExponentialWeight { alpha });
        for i in 0..db.len() {
            assert!(fast[i].approx_eq(generic[i], 1e-10));
        }
    }

    #[test]
    fn truncated_matches_full_for_step_weight() {
        let db = IndependentDb::from_pairs([
            (10.0, 0.9),
            (9.0, 0.1),
            (8.0, 0.5),
            (7.0, 1.0),
            (6.0, 0.25),
            (5.0, 0.66),
        ])
        .unwrap();
        let w = StepWeight { h: 3 };
        let trunc = prf_rank(&db, &w);
        // Oracle: Υ = Pr(r(t) ≤ 3) from the distribution matrix.
        let d = rank_distributions(&db);
        for (i, t) in db.tuples().iter().enumerate() {
            let expect: f64 = d[i][..3].iter().sum();
            assert!(
                (trunc[i].re - expect).abs() < 1e-12,
                "tuple {i}: {} vs {expect}",
                trunc[i].re
            );
            let _ = t;
        }
    }

    #[test]
    fn generic_prf_matches_distribution_oracle() {
        let db =
            IndependentDb::from_pairs([(4.0, 0.8), (3.0, 0.2), (2.0, 0.7), (1.0, 0.4)]).unwrap();
        let d = rank_distributions(&db);
        let weights: Vec<Box<dyn WeightFunction>> = vec![
            Box::new(ConstantWeight),
            Box::new(ScoreWeight),
            Box::new(LinearWeight),
            Box::new(DcgWeight),
            Box::new(PositionWeight { j: 2 }),
            Box::new(TopScoreWeight),
            Box::new(TabulatedWeight::from_real(&[0.9, 0.5, 0.1])),
        ];
        for w in &weights {
            let got = prf_rank(&db, w.as_ref());
            for (i, t) in db.tuples().iter().enumerate() {
                let want = upsilon_from_distribution(t, &d[i], w.as_ref());
                assert!(
                    got[i].approx_eq(want, 1e-10),
                    "{}: tuple {i}: {} vs {want}",
                    w.name(),
                    got[i]
                );
            }
        }
    }

    #[test]
    fn constant_weight_equals_probability() {
        let db = example1_db();
        let u = prf_rank(&db, &ConstantWeight);
        for (i, t) in db.tuples().iter().enumerate() {
            assert!((u[i].re - t.prob).abs() < 1e-12);
        }
    }

    #[test]
    fn escore_weight_equals_expected_score() {
        let db = example1_db();
        let u = prf_rank(&db, &ScoreWeight);
        for (i, t) in db.tuples().iter().enumerate() {
            assert!((u[i].re - t.prob * t.score).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_and_log_agree_with_plain_on_small_input() {
        let db = example1_db();
        let alpha = 0.7;
        let plain = prfe_rank(&db, Complex::real(alpha));
        let scaled = prfe_rank_scaled(&db, Complex::real(alpha));
        let logs = prfe_rank_log(&db, alpha);
        for i in 0..db.len() {
            assert!((scaled[i].to_plain().re - plain[i].re).abs() < 1e-12);
            assert!((logs[i] - plain[i].re.ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn scaled_survives_underflow_scale() {
        // 20_000 tuples with α = 0.5: plain f64 underflows, scaled does not,
        // and the log variant agrees with the scaled keys.
        let n = 20_000;
        let db = IndependentDb::from_pairs(
            (0..n).map(|i| ((n - i) as f64, 0.3 + 0.4 * ((i % 7) as f64 / 7.0))),
        )
        .unwrap();
        let alpha = 0.5;
        let scaled = prfe_rank_scaled(&db, Complex::real(alpha));
        let logs = prfe_rank_log(&db, alpha);
        let mut saw_underflow_region = false;
        for i in 0..n {
            let key = scaled[i].magnitude_key();
            assert!(key.is_finite(), "scaled key must stay finite");
            // log2 vs ln: convert.
            assert!(
                (key * std::f64::consts::LN_2 - logs[i]).abs() < 1e-6 * logs[i].abs().max(1.0),
                "tuple {i}: {} vs {}",
                key * std::f64::consts::LN_2,
                logs[i]
            );
            if logs[i] < -800.0 {
                saw_underflow_region = true;
            }
        }
        assert!(
            saw_underflow_region,
            "test must actually exercise underflow"
        );
    }

    #[test]
    fn zero_probability_tuples_are_handled() {
        let db = IndependentDb::from_pairs([(3.0, 0.0), (2.0, 0.5), (1.0, 0.8)]).unwrap();
        let u = prfe_rank(&db, Complex::real(0.5));
        assert_eq!(u[0], Complex::ZERO);
        // t with p=0 contributes nothing to later prefixes: t2's Υ treats it
        // as a (1−0+0·α)=1 factor.
        assert!((u[1].re - 0.5 * 0.5).abs() < 1e-12);
        let d = rank_distributions(&db);
        assert!(d[0].iter().all(|&p| p == 0.0));
    }

    #[test]
    fn empty_database() {
        let db = IndependentDb::from_pairs(std::iter::empty::<(f64, f64)>()).unwrap();
        assert!(prf_rank(&db, &ConstantWeight).is_empty());
        assert!(prfe_rank(&db, Complex::real(0.5)).is_empty());
    }
}
