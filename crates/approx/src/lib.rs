//! Approximating and learning ranking functions (Section 5).
//!
//! * [`dft`] — approximate any decaying PRFω weight function by a mixture
//!   of `L` PRFe terms via a refined DFT (damping, initial scaling,
//!   extend-and-shift), turning `O(n·h)` exact evaluation into
//!   `O(n·L)` — orders of magnitude faster at paper scale (Figure 11).
//!   The implementation lives in [`prf_core::mixture`] (so the unified
//!   `RankQuery` engine can drive it); this crate re-exports it under its
//!   historical paths;
//! * [`learn`] — learn PRFe's `α` by recursive grid search on the Kendall
//!   distance, or PRFω(h) weights by pairwise hinge-loss descent over
//!   positional-probability features.

#![deny(missing_docs)]

/// DFT-based PRFe-mixture approximation (re-export of
/// [`prf_core::mixture`], its home since the unified query engine landed).
pub mod dft {
    pub use prf_core::mixture::*;
}
pub mod learn;

pub use dft::{approximate_weights, DftApproxConfig, ExpMixture};
pub use learn::{
    learn_prf_omega, learn_prfe_alpha, learn_prfe_alpha_topk, omega_ranking_distance,
    RankLearnConfig,
};
