//! Learning ranking functions from user preferences (Section 5.2).
//!
//! Positional-probability features cannot be computed per tuple in
//! isolation, so the paper assumes the user ranks a small *sample* of the
//! relation; features are computed as if the sample were the whole relation
//! and the learned parameters are then applied to the full dataset.
//!
//! * [`learn_prfe_alpha`] — the paper's recursive grid search ("binary
//!   search-like heuristic") minimising the Kendall distance between the
//!   user's ranking of the sample and PRFe(α)'s. All the classical ranking
//!   functions produce uni-valley distance curves (Figure 7), for which the
//!   search finds the global optimum.
//! * [`learn_prf_omega`] — a linear pairwise ranking learner over the
//!   features `Pr(r(t) = i), i ≤ h`: L2-regularised hinge loss on
//!   preference pairs, optimised by seeded subgradient descent. This is the
//!   same objective SVM-light optimises in ranking mode (the paper's
//!   tool); see DESIGN.md §3 for the substitution note.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prf_core::spectrum::prfe_ranking_at;
use prf_metrics::kendall_topk;
use prf_pdb::{IndependentDb, TupleId};

/// Kendall distance between a user ranking and PRFe(α) on the sample,
/// compared over the top-`k` prefixes.
fn alpha_distance_topk(sample: &IndependentDb, user: &[u32], alpha: f64, k: usize) -> f64 {
    let mine: Vec<u32> = prfe_ranking_at(sample, alpha).iter().map(|t| t.0).collect();
    kendall_topk(user, &mine, k.max(1))
}

/// Kendall distance between a user ranking and PRFe(α) on the sample (full
/// lists). Used by the tests; production callers go through the top-k form.
#[cfg(test)]
fn alpha_distance(sample: &IndependentDb, user: &[u32], alpha: f64) -> f64 {
    alpha_distance_topk(sample, user, alpha, user.len())
}

/// Learns the PRFe parameter `α ∈ [0, 1]` from a user-ranked sample by
/// recursive 10-way grid refinement of the Kendall distance (Section 5.2),
/// minimising the *full-list* distance on the sample.
///
/// `user_ranking` lists the sample's tuple ids best-first. `levels`
/// controls the refinement depth (each level shrinks the interval by 5×;
/// the paper's experiments correspond to 3–4 levels).
///
/// When the user's downstream interest is a top-k list, prefer
/// [`learn_prfe_alpha_topk`]: on large samples the full-list objective is
/// dominated by the (noise-ranked) tail of the distribution, which can pull
/// α far from the value that best reproduces the head.
pub fn learn_prfe_alpha(sample: &IndependentDb, user_ranking: &[TupleId], levels: usize) -> f64 {
    learn_prfe_alpha_topk(sample, user_ranking, levels, user_ranking.len())
}

/// Like [`learn_prfe_alpha`] but minimising the top-`focus_k` Kendall
/// distance on the sample — the protocol used for the Figure 9 experiments
/// (the evaluation is itself a top-k comparison).
pub fn learn_prfe_alpha_topk(
    sample: &IndependentDb,
    user_ranking: &[TupleId],
    levels: usize,
    focus_k: usize,
) -> f64 {
    assert!(!user_ranking.is_empty(), "need a non-empty user ranking");
    let k = focus_k.clamp(1, user_ranking.len());
    let user: Vec<u32> = user_ranking.iter().map(|t| t.0).collect();
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut best = (f64::INFINITY, 0.5f64);
    for _ in 0..levels.max(1) {
        let width = hi - lo;
        // Probe the 9 interior grid points of [lo, hi].
        let mut level_best = (f64::INFINITY, 1usize);
        for i in 1..=9usize {
            let alpha = lo + i as f64 * width / 10.0;
            let d = alpha_distance_topk(sample, &user, alpha, k);
            if d < level_best.0 {
                level_best = (d, i);
            }
            if d < best.0 {
                best = (d, alpha);
            }
        }
        // Shrink to the two grid cells around the level's best point
        // (the paper's [max(L, L+(i−1)·w/10), min(U, L+(i+1)·w/10)]).
        let i = level_best.1 as f64;
        let new_lo = (lo + (i - 1.0) * width / 10.0).max(lo);
        let new_hi = (lo + (i + 1.0) * width / 10.0).min(hi);
        lo = new_lo;
        hi = new_hi;
    }
    best.1
}

/// Configuration for the pairwise linear ranking learner.
#[derive(Clone, Copy, Debug)]
pub struct RankLearnConfig {
    /// Feature horizon `h`: weights are learned for ranks `1..=h`.
    pub h: usize,
    /// Number of epochs over the preference pairs.
    pub epochs: usize,
    /// Initial learning rate (decays as `1/√epoch`).
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub lambda: f64,
    /// RNG seed for pair shuffling.
    pub seed: u64,
}

impl Default for RankLearnConfig {
    fn default() -> Self {
        RankLearnConfig {
            h: 100,
            epochs: 60,
            learning_rate: 1.0,
            lambda: 1e-4,
            seed: 7,
        }
    }
}

/// Learns PRFω(h) weights from a user-ranked sample by pairwise hinge-loss
/// subgradient descent over positional-probability features.
///
/// Returns the weight table `w₁ … w_h` (feed into
/// [`prf_core::weights::TabulatedWeight`]); `h` is clamped to the sample
/// size. Adjacent preference pairs are used (tuple ranked `i` beats tuple
/// ranked `i+1`, plus a stride-spaced set of non-adjacent pairs), matching
/// the pairwise reduction of the learning-to-rank literature.
pub fn learn_prf_omega(
    sample: &IndependentDb,
    user_ranking: &[TupleId],
    cfg: &RankLearnConfig,
) -> Vec<f64> {
    let m = sample.len();
    let h = cfg.h.min(m).max(1);
    // Features: rank distributions truncated to h, rescaled so entries are
    // O(1) (raw positional probabilities are O(1/m), which conditions the
    // fixed-margin hinge badly).
    let mut dists = prf_core::independent::rank_distributions(sample);
    let fmax = dists
        .iter()
        .flat_map(|d| d.iter().take(h))
        .fold(0.0f64, |a, &b| a.max(b.abs()))
        .max(1e-12);
    for d in &mut dists {
        for v in d.iter_mut() {
            *v /= fmax;
        }
    }
    let feature = |t: TupleId| -> &[f64] { &dists[t.index()][..h] };

    // Preference pairs (better, worse).
    let mut pairs: Vec<(TupleId, TupleId)> = Vec::new();
    for w in user_ranking.windows(2) {
        pairs.push((w[0], w[1]));
    }
    // Longer-range pairs give the learner global shape information.
    for stride in [2usize, 4, 8, 16] {
        let mut i = 0;
        while i + stride < user_ranking.len() {
            pairs.push((user_ranking[i], user_ranking[i + stride]));
            i += stride;
        }
    }

    let mut w = vec![0.0f64; h];
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for epoch in 0..cfg.epochs {
        let rate = cfg.learning_rate / ((epoch + 1) as f64).sqrt();
        // Shuffle pairs.
        for i in (1..pairs.len()).rev() {
            let j = rng.gen_range(0..=i);
            pairs.swap(i, j);
        }
        for &(better, worse) in &pairs {
            let fb = feature(better);
            let fw = feature(worse);
            let margin: f64 = w
                .iter()
                .zip(fb.iter().zip(fw))
                .map(|(wi, (a, b))| wi * (a - b))
                .sum();
            // Subgradient of max(0, 1 − margin) + λ‖w‖².
            for (wi, (a, b)) in w.iter_mut().zip(fb.iter().zip(fw)) {
                let mut g = 2.0 * cfg.lambda * *wi;
                if margin < 1.0 {
                    g -= a - b;
                }
                *wi -= rate * g;
            }
        }
    }
    w
}

/// Evaluates a learned weight table on a labelled ranking: the normalized
/// Kendall distance (over the full list) between the user's order and the
/// PRFω order induced by `weights` on `db`.
pub fn omega_ranking_distance(
    db: &IndependentDb,
    weights: &[f64],
    user_ranking: &[TupleId],
) -> f64 {
    use prf_core::topk::{Ranking, ValueOrder};
    let w = prf_core::weights::TabulatedWeight::from_real(weights);
    let ups = prf_core::independent::prf_rank(db, &w);
    let mine = Ranking::from_values(&ups, ValueOrder::RealPart);
    let user: Vec<u32> = user_ranking.iter().map(|t| t.0).collect();
    kendall_topk(&user, &mine.top_k_u32(user.len()), user.len().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_core::topk::{Ranking, ValueOrder};
    use prf_datasets::syn_ind;

    fn ranking_by_prfe(db: &IndependentDb, alpha: f64) -> Vec<TupleId> {
        prfe_ranking_at(db, alpha)
    }

    #[test]
    fn recovers_planted_alpha() {
        let db = syn_ind(300, 5);
        let truth = 0.95;
        let user = ranking_by_prfe(&db, truth);
        let learned = learn_prfe_alpha(&db, &user, 4);
        // The learned α must reproduce the user ranking (the α interval
        // producing the same ranking can be wide, so compare rankings, not
        // parameters).
        let d = alpha_distance(&db, &user.iter().map(|t| t.0).collect::<Vec<_>>(), learned);
        assert!(d < 1e-3, "distance {d} at learned α={learned}");
    }

    #[test]
    fn learns_pt_h_reasonably() {
        let db = syn_ind(400, 9);
        // User ranks by PT(40).
        let ups = prf_core::independent::prf_rank(&db, &prf_core::weights::StepWeight { h: 40 });
        let user = Ranking::from_values(&ups, ValueOrder::RealPart);
        let learned = learn_prfe_alpha(&db, user.order(), 4);
        let d = alpha_distance(
            &db,
            &user.order().iter().map(|t| t.0).collect::<Vec<_>>(),
            learned,
        );
        // PRFe approximates PT(h) well but not perfectly (Figure 7); the
        // optimal α depends on h relative to n and need not be near 1.
        assert!(d < 0.12, "distance {d} at α={learned}");
    }

    #[test]
    fn omega_learner_fits_planted_step_weights() {
        let db = syn_ind(60, 11);
        let truth = prf_core::weights::StepWeight { h: 10 };
        let ups = prf_core::independent::prf_rank(&db, &truth);
        let user = Ranking::from_values(&ups, ValueOrder::RealPart);
        let w = learn_prf_omega(
            &db,
            user.order(),
            &RankLearnConfig {
                h: 20,
                epochs: 120,
                ..Default::default()
            },
        );
        let d = omega_ranking_distance(&db, &w, user.order());
        assert!(d < 0.1, "distance {d}; weights {w:?}");
    }

    #[test]
    fn omega_learner_on_prfe_teacher() {
        let db = syn_ind(60, 13);
        let user = ranking_by_prfe(&db, 0.9);
        let w = learn_prf_omega(
            &db,
            &user,
            &RankLearnConfig {
                h: 30,
                epochs: 120,
                ..Default::default()
            },
        );
        let d = omega_ranking_distance(&db, &w, &user);
        assert!(d < 0.1, "distance {d}");
    }

    #[test]
    fn grid_search_handles_degenerate_rankings() {
        // All-equal probabilities: every α gives the same ranking; the
        // search must terminate and return something in range.
        let db = IndependentDb::from_pairs((0..20).map(|i| (100.0 - i as f64, 0.5))).unwrap();
        let user = ranking_by_prfe(&db, 0.7);
        let a = learn_prfe_alpha(&db, &user, 3);
        assert!((0.0..=1.0).contains(&a));
        let d = alpha_distance(&db, &user.iter().map(|t| t.0).collect::<Vec<_>>(), a);
        assert!(d < 1e-9);
    }
}
