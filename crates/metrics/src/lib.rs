//! Distance metrics between top-k ranked lists.
//!
//! The paper compares ranking functions with the *normalized Kendall
//! distance* for top-k lists (Fagin, Kumar & Sivakumar, SODA 2003 — the
//! optimistic `K⁽⁰⁾` variant): count the unordered pairs of items whose
//! relative order can be *inferred* to differ between the two underlying full
//! rankings, then divide by `k²` so the distance lies in `[0, 1]` (0 =
//! identical top-k lists, 1 = disjoint).
//!
//! If the distance is `δ`, the two lists share at least a `1 − √δ` fraction
//! of their items — the bound quoted in Section 3.2 and verified by property
//! test here.
//!
//! Also provided: the intersection metric and Spearman's footrule with
//! location `k+1` for missing items, both from the same Fagin et al.
//! framework, used when discussing consensus top-k answers.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::hash::Hash;

mod fenwick;

pub use fenwick::Fenwick;

/// Normalized Kendall distance between two top-k lists.
///
/// `a` and `b` are the top-k prefixes (highest rank first) of two full
/// rankings; items must be distinct within each list. Only the first `k`
/// entries of each list are considered, and the result is normalised by
/// `k²`.
///
/// Pair penalties (`K⁽⁰⁾`):
/// 1. both items in both lists → 1 if their relative order differs;
/// 2. both in one list, one of them in the other → 1 if the shared-list
///    order contradicts the membership information of the other list;
/// 3. one item exclusive to each list → always 1;
/// 4. both items exclusive to the same list → 0 (order in the other ranking
///    cannot be inferred).
///
/// Runs in `O(k log k)`.
///
/// ```
/// use prf_metrics::kendall_topk;
/// assert_eq!(kendall_topk(&[1u32, 2, 3], &[1, 2, 3], 3), 0.0); // identical
/// assert_eq!(kendall_topk(&[1u32, 2, 3], &[4, 5, 6], 3), 1.0); // disjoint
/// // One adjacent swap in fully-shared lists: 1 discordant pair / k².
/// assert!((kendall_topk(&[1u32, 2, 3], &[1, 3, 2], 3) - 1.0 / 9.0).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if `k == 0` or either list contains duplicates among its first `k`
/// entries.
pub fn kendall_topk<T: Copy + Eq + Hash>(a: &[T], b: &[T], k: usize) -> f64 {
    assert!(k > 0, "kendall_topk: k must be positive");
    let a = &a[..a.len().min(k)];
    let b = &b[..b.len().min(k)];

    let pos_a: HashMap<T, usize> = a.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let pos_b: HashMap<T, usize> = b.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    assert_eq!(
        pos_a.len(),
        a.len(),
        "kendall_topk: duplicate items in first list"
    );
    assert_eq!(
        pos_b.len(),
        b.len(),
        "kendall_topk: duplicate items in second list"
    );

    let mut penalty = 0u64;

    // Case 1: inversions among shared items. Collect shared items in
    // `a`-order, then count inversions of their `b`-positions.
    let shared_b_positions: Vec<usize> = a.iter().filter_map(|t| pos_b.get(t).copied()).collect();
    let s = shared_b_positions.len();
    penalty += count_inversions(&shared_b_positions);

    // Case 2 (a-side): i shared, j in a only, with j ranked above i in a.
    // Walking `a` in order, every a-exclusive item seen before a shared item
    // contributes one penalty (list b says i beats j — i is in b's top-k and
    // j is not — while list a says the opposite).
    let mut a_exclusive_seen = 0u64;
    for t in a {
        if pos_b.contains_key(t) {
            penalty += a_exclusive_seen;
        } else {
            a_exclusive_seen += 1;
        }
    }
    // Case 2 (b-side), symmetric.
    let mut b_exclusive_seen = 0u64;
    for t in b {
        if pos_a.contains_key(t) {
            penalty += b_exclusive_seen;
        } else {
            b_exclusive_seen += 1;
        }
    }

    // Case 3: one item exclusive to each list — every such pair disagrees.
    let a_only = (a.len() - s) as u64;
    let b_only = (b.len() - s) as u64;
    penalty += a_only * b_only;

    penalty as f64 / (k * k) as f64
}

/// Reference `O(u²)` implementation of [`kendall_topk`] enumerating every
/// pair explicitly; used as the oracle in property tests and by callers that
/// prefer obviously-correct code on tiny inputs.
pub fn kendall_topk_naive<T: Copy + Eq + Hash>(a: &[T], b: &[T], k: usize) -> f64 {
    assert!(k > 0);
    let a = &a[..a.len().min(k)];
    let b = &b[..b.len().min(k)];
    let pos_a: HashMap<T, usize> = a.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let pos_b: HashMap<T, usize> = b.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut union: Vec<T> = Vec::new();
    for &t in a.iter().chain(b.iter()) {
        if !union.contains(&t) {
            union.push(t);
        }
    }
    let mut penalty = 0u64;
    for (ui, &i) in union.iter().enumerate() {
        for &j in &union[ui + 1..] {
            let (ai, aj) = (pos_a.get(&i), pos_a.get(&j));
            let (bi, bj) = (pos_b.get(&i), pos_b.get(&j));
            let bad = match (ai, aj, bi, bj) {
                (Some(ai), Some(aj), Some(bi), Some(bj)) => (ai < aj) != (bi < bj),
                // i,j both in a; exactly one of them in b.
                (Some(ai), Some(aj), Some(_), None) => aj < ai,
                (Some(ai), Some(aj), None, Some(_)) => ai < aj,
                // i,j both in b; exactly one of them in a.
                (Some(_), None, Some(bi), Some(bj)) => bj < bi,
                (None, Some(_), Some(bi), Some(bj)) => bi < bj,
                // One exclusive to each list.
                (Some(_), None, None, Some(_)) => true,
                (None, Some(_), Some(_), None) => true,
                // Both exclusive to the same list: nothing can be inferred.
                _ => false,
            };
            if bad {
                penalty += 1;
            }
        }
    }
    penalty as f64 / (k * k) as f64
}

/// Counts inversions in a sequence of distinct values via a Fenwick tree.
fn count_inversions(xs: &[usize]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let max = xs.iter().copied().max().unwrap_or(0);
    let mut bit = Fenwick::new(max + 1);
    let mut inv = 0u64;
    // Scan left to right; an inversion is an earlier element with a larger
    // value.
    for (i, &x) in xs.iter().enumerate() {
        let le = bit.prefix_sum(x); // values ≤ x seen so far
        inv += (i as u64) - le;
        bit.add(x, 1);
    }
    inv
}

/// The intersection metric of Fagin et al.:
/// `1 − (1/k)·Σ_{d=1..k} |A_d ∩ B_d| / d` where `A_d`, `B_d` are the depth-`d`
/// prefixes. 0 for identical lists, 1 for disjoint.
pub fn intersection_metric<T: Copy + Eq + Hash>(a: &[T], b: &[T], k: usize) -> f64 {
    assert!(k > 0);
    let a = &a[..a.len().min(k)];
    let b = &b[..b.len().min(k)];
    let mut seen_a: HashMap<T, ()> = HashMap::new();
    let mut seen_b: HashMap<T, ()> = HashMap::new();
    let mut overlap = 0usize;
    let mut sum = 0.0;
    for d in 0..k {
        // Each shared item is counted exactly once: at the later of its two
        // insertions (the a-side check runs before b inserts this depth's
        // item, so an item at the same depth in both lists counts once, on
        // the b side).
        if let Some(&t) = a.get(d) {
            seen_a.insert(t, ());
            if seen_b.contains_key(&t) {
                overlap += 1;
            }
        }
        if let Some(&t) = b.get(d) {
            seen_b.insert(t, ());
            if seen_a.contains_key(&t) {
                overlap += 1;
            }
        }
        sum += overlap as f64 / (d + 1) as f64;
    }
    1.0 - sum / k as f64
}

/// Spearman's footrule with location `k+1` for missing items
/// (`F⁽ᵏ⁺¹⁾` of Fagin et al.), normalised to `[0, 1]` by its maximum value
/// `k·(k+1)`.
pub fn footrule_topk<T: Copy + Eq + Hash>(a: &[T], b: &[T], k: usize) -> f64 {
    assert!(k > 0);
    let a = &a[..a.len().min(k)];
    let b = &b[..b.len().min(k)];
    let pos_a: HashMap<T, usize> = a.iter().enumerate().map(|(i, &t)| (t, i + 1)).collect();
    let pos_b: HashMap<T, usize> = b.iter().enumerate().map(|(i, &t)| (t, i + 1)).collect();
    let missing = (k + 1) as i64;
    let mut sum = 0i64;
    for (t, &pa) in &pos_a {
        let pb = pos_b.get(t).map(|&p| p as i64).unwrap_or(missing);
        sum += (pa as i64 - pb).abs();
    }
    for (t, &pb) in &pos_b {
        if !pos_a.contains_key(t) {
            sum += (missing - pb as i64).abs();
        }
    }
    sum as f64 / (k * (k + 1)) as f64
}

/// Fraction of items shared between the two top-k lists, `|A ∩ B| / k`.
pub fn overlap_fraction<T: Copy + Eq + Hash>(a: &[T], b: &[T], k: usize) -> f64 {
    assert!(k > 0);
    let a = &a[..a.len().min(k)];
    let b = &b[..b.len().min(k)];
    let set_b: HashMap<T, ()> = b.iter().map(|&t| (t, ())).collect();
    let shared = a.iter().filter(|t| set_b.contains_key(t)).count();
    shared as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_lists_have_zero_distance() {
        let a = [1u32, 2, 3, 4];
        assert_eq!(kendall_topk(&a, &a, 4), 0.0);
        assert_eq!(kendall_topk_naive(&a, &a, 4), 0.0);
        assert_eq!(intersection_metric(&a, &a, 4), 0.0);
        assert_eq!(footrule_topk(&a, &a, 4), 0.0);
    }

    #[test]
    fn disjoint_lists_have_distance_one() {
        let a = [1u32, 2, 3];
        let b = [4u32, 5, 6];
        assert_eq!(kendall_topk(&a, &b, 3), 1.0);
        assert_eq!(kendall_topk_naive(&a, &b, 3), 1.0);
        assert!((intersection_metric(&a, &b, 3) - 1.0).abs() < 1e-12);
        assert_eq!(overlap_fraction(&a, &b, 3), 0.0);
    }

    #[test]
    fn single_swap() {
        // One adjacent transposition in fully shared lists = 1 pair / k².
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 3, 2, 4];
        assert!((kendall_topk(&a, &b, 4) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn reversal_counts_all_pairs() {
        let a = [1u32, 2, 3, 4];
        let b = [4u32, 3, 2, 1];
        // All C(4,2)=6 pairs inverted: 6/16.
        assert!((kendall_topk(&a, &b, 4) - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn fast_matches_naive_on_mixed_lists() {
        let a = [10u32, 3, 7, 1, 9];
        let b = [3u32, 12, 10, 9, 4];
        assert!((kendall_topk(&a, &b, 5) - kendall_topk_naive(&a, &b, 5)).abs() < 1e-12);
        let c = [1u32, 2];
        let d = [2u32, 3];
        assert!((kendall_topk(&c, &d, 2) - kendall_topk_naive(&c, &d, 2)).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [10u32, 3, 7, 1, 9];
        let b = [3u32, 12, 10, 9, 4];
        assert!((kendall_topk(&a, &b, 5) - kendall_topk(&b, &a, 5)).abs() < 1e-12);
    }

    #[test]
    fn truncation_to_k() {
        let a = [1u32, 2, 3, 4, 5, 6];
        let b = [1u32, 2, 3, 9, 9, 9]; // differences beyond k=3 are invisible
        assert_eq!(kendall_topk(&a, &b, 3), 0.0);
    }

    #[test]
    fn overlap_bound_from_paper() {
        // If distance is δ, the lists share ≥ 1 − √δ of their items.
        let a = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let b = [1u32, 2, 3, 4, 5, 11, 12, 13, 14, 15];
        let k = 10;
        let delta = kendall_topk(&a, &b, k);
        let shared = overlap_fraction(&a, &b, k);
        assert!(shared >= 1.0 - delta.sqrt() - 1e-12, "{shared} vs {delta}");
    }

    #[test]
    fn footrule_detects_displacement() {
        let a = [1u32, 2, 3];
        let b = [3u32, 2, 1];
        let f = footrule_topk(&a, &b, 3);
        assert!(f > 0.0 && f <= 1.0);
        let disjoint = footrule_topk(&[1u32, 2, 3], &[4u32, 5, 6], 3);
        assert!(disjoint > f, "{disjoint} vs {f}");
    }

    #[test]
    fn inversion_count() {
        assert_eq!(count_inversions(&[]), 0);
        assert_eq!(count_inversions(&[0, 1, 2]), 0);
        assert_eq!(count_inversions(&[2, 1, 0]), 3);
        assert_eq!(count_inversions(&[1, 0, 2]), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        kendall_topk(&[1u32, 1], &[1u32, 2], 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random pair of duplicate-free top-k lists over a small universe.
    fn two_lists(k: usize) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
        let perm = proptest::sample::subsequence((0u32..30).collect::<Vec<_>>(), k).prop_shuffle();
        (perm.clone(), perm)
    }

    proptest! {
        #[test]
        fn fast_equals_naive((a, b) in two_lists(8)) {
            let fast = kendall_topk(&a, &b, 8);
            let naive = kendall_topk_naive(&a, &b, 8);
            prop_assert!((fast - naive).abs() < 1e-12, "{fast} vs {naive}");
        }

        #[test]
        fn bounded_and_symmetric((a, b) in two_lists(6)) {
            let d = kendall_topk(&a, &b, 6);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((d - kendall_topk(&b, &a, 6)).abs() < 1e-12);
        }

        #[test]
        fn identity_of_indiscernibles(a in proptest::sample::subsequence((0u32..30).collect::<Vec<_>>(), 6).prop_shuffle()) {
            prop_assert_eq!(kendall_topk(&a, &a, 6), 0.0);
        }

        #[test]
        fn overlap_bound_holds((a, b) in two_lists(8)) {
            let d = kendall_topk(&a, &b, 8);
            let shared = overlap_fraction(&a, &b, 8);
            prop_assert!(shared >= 1.0 - d.sqrt() - 1e-9);
        }
    }
}
