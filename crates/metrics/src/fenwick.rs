//! A Fenwick tree (binary indexed tree) over `u64` counts.
//!
//! Used to count rank inversions between two top-k lists in `O(k log k)`.

/// A Fenwick tree supporting point updates and prefix sums over
/// `0..capacity`.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Creates a tree covering indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Fenwick {
            tree: vec![0; capacity + 1],
        }
    }

    /// Adds `delta` at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn add(&mut self, index: usize, delta: u64) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of counts over `0..=index`.
    pub fn prefix_sum(&self, index: usize) -> u64 {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Total count stored.
    pub fn total(&self) -> u64 {
        if self.tree.len() <= 1 {
            0
        } else {
            self.prefix_sum(self.tree.len() - 2)
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays
mod tests {
    use super::*;

    #[test]
    fn prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 1);
        f.add(3, 2);
        f.add(9, 5);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(2), 1);
        assert_eq!(f.prefix_sum(3), 3);
        assert_eq!(f.prefix_sum(9), 8);
        assert_eq!(f.total(), 8);
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert_eq!(f.total(), 0);
    }

    #[test]
    fn matches_naive_prefix_sums() {
        let updates = [(2usize, 3u64), (5, 1), (2, 2), (7, 10), (0, 4)];
        let mut f = Fenwick::new(8);
        let mut naive = [0u64; 8];
        for &(i, d) in &updates {
            f.add(i, d);
            naive[i] += d;
        }
        let mut acc = 0;
        for i in 0..8 {
            acc += naive[i];
            assert_eq!(f.prefix_sum(i), acc, "prefix {i}");
        }
    }
}
