//! Criterion benchmarks for the and/xor-tree algorithms: the ablations
//! DESIGN.md calls out — incremental (Algorithm 3) vs recompute PRFe, and
//! the x-tuple PT fast path vs the generic truncated expansion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prf_core::tree::{prfe_rank_tree, prfe_rank_tree_recompute, prfe_rank_tree_scaled};
use prf_core::weights::StepWeight;
use prf_core::xtuple::prf_omega_rank_xtuple;
use prf_datasets::{syn_med_tree, syn_xor_tree};
use prf_numeric::Complex;

fn bench_incremental_vs_recompute(c: &mut Criterion) {
    // The ablation for Algorithm 3: the incremental path updates O(depth)
    // nodes per tuple; the recompute baseline folds the whole tree.
    let tree = syn_med_tree(2_000, 3);
    let alpha = Complex::real(0.9);
    let mut g = c.benchmark_group("tree_prfe_2k");
    g.sample_size(12);
    g.bench_function("incremental_alg3", |b| {
        b.iter(|| black_box(prfe_rank_tree(&tree, alpha)))
    });
    g.bench_function("incremental_scaled", |b| {
        b.iter(|| black_box(prfe_rank_tree_scaled(&tree, alpha)))
    });
    g.bench_function("recompute_per_tuple", |b| {
        b.iter(|| black_box(prfe_rank_tree_recompute(&tree, alpha)))
    });
    g.finish();
}

fn bench_xtuple_fast_path(c: &mut Criterion) {
    // PT(h) on x-tuples: O(n·h) linear-factor path vs O(n²·h) generic
    // expansion.
    let tree = syn_xor_tree(2_000, 3);
    let w = StepWeight { h: 50 };
    let mut g = c.benchmark_group("xtuple_pt50_2k");
    g.sample_size(10);
    g.bench_function("fast_path", |b| {
        b.iter(|| black_box(prf_omega_rank_xtuple(&tree, &w).expect("x-tuple")))
    });
    g.bench_function("generic_expansion", |b| {
        b.iter(|| black_box(prf_core::tree::prf_rank_tree(&tree, &w)))
    });
    g.finish();
}

fn bench_tree_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_prfe_scaling");
    g.sample_size(10);
    for n in [5_000usize, 20_000, 80_000] {
        let tree = syn_xor_tree(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| black_box(prfe_rank_tree_scaled(tree, Complex::real(0.9))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_recompute,
    bench_xtuple_fast_path,
    bench_tree_scaling
);
criterion_main!(benches);
