//! Criterion benchmarks for the and/xor-tree algorithms: the headline
//! incremental-engine vs full-refold PRFω ablation (the `O(n²·h)` wall of
//! EXPERIMENTS.md Figure 10(ii)/11(iii)), the incremental (Algorithm 3) vs
//! recompute PRFe ablation, and the x-tuple PT fast path vs the generic
//! truncated expansion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prf_core::tree::{
    prf_rank_tree, prf_rank_tree_refold, prfe_rank_tree, prfe_rank_tree_recompute,
    prfe_rank_tree_scaled,
};
use prf_core::weights::StepWeight;
use prf_core::xtuple::prf_omega_rank_xtuple;
use prf_datasets::{syn_med_tree, syn_xor_tree};
use prf_numeric::Complex;

fn bench_incremental_vs_refold_prf(c: &mut Criterion) {
    // The acceptance workload for the incremental symbolic engine: exact
    // PRFω(h)/PT(h) on a general (non-x-tuple) tree with n = 10⁴, h = 100.
    // The full refold folds all ~2n nodes per tuple (O(n²·h) total); the
    // engine recombines two leaf-to-root paths (O(h²·log(n/h)) per tuple).
    let tree = syn_med_tree(10_000, 3);
    let w = StepWeight { h: 100 };
    let mut g = c.benchmark_group("prf_tree_10k_h100");
    g.sample_size(3); // the refold baseline costs seconds per iteration
    g.bench_function("incremental_engine", |b| {
        b.iter(|| black_box(prf_rank_tree(&tree, &w)))
    });
    g.bench_function("full_refold_alg2", |b| {
        b.iter(|| black_box(prf_rank_tree_refold(&tree, &w)))
    });
    g.finish();

    // Scaling of the engine alone past the refold-feasible regime.
    let mut g = c.benchmark_group("prf_tree_incremental_scaling_h100");
    g.sample_size(3);
    for n in [20_000usize, 40_000] {
        let tree = syn_med_tree(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| black_box(prf_rank_tree(tree, &w)))
        });
    }
    g.finish();
}

fn bench_incremental_vs_recompute(c: &mut Criterion) {
    // The ablation for Algorithm 3: the incremental path updates O(depth)
    // nodes per tuple; the recompute baseline folds the whole tree.
    let tree = syn_med_tree(2_000, 3);
    let alpha = Complex::real(0.9);
    let mut g = c.benchmark_group("tree_prfe_2k");
    g.sample_size(12);
    g.bench_function("incremental_alg3", |b| {
        b.iter(|| black_box(prfe_rank_tree(&tree, alpha)))
    });
    g.bench_function("incremental_scaled", |b| {
        b.iter(|| black_box(prfe_rank_tree_scaled(&tree, alpha)))
    });
    g.bench_function("recompute_per_tuple", |b| {
        b.iter(|| black_box(prfe_rank_tree_recompute(&tree, alpha)))
    });
    g.finish();
}

fn bench_xtuple_fast_path(c: &mut Criterion) {
    // PT(h) on x-tuples: O(n·h) linear-factor path vs O(n²·h) generic
    // expansion.
    let tree = syn_xor_tree(2_000, 3);
    let w = StepWeight { h: 50 };
    let mut g = c.benchmark_group("xtuple_pt50_2k");
    g.sample_size(10);
    g.bench_function("fast_path", |b| {
        b.iter(|| black_box(prf_omega_rank_xtuple(&tree, &w).expect("x-tuple")))
    });
    g.bench_function("generic_expansion", |b| {
        b.iter(|| black_box(prf_core::tree::prf_rank_tree(&tree, &w)))
    });
    g.finish();
}

fn bench_tree_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_prfe_scaling");
    g.sample_size(10);
    for n in [5_000usize, 20_000, 80_000] {
        let tree = syn_xor_tree(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| black_box(prfe_rank_tree_scaled(tree, Complex::real(0.9))))
        });
    }
    g.finish();
}

fn bench_pt_exact_vs_dft(c: &mut Criterion) {
    // The probe behind the `Auto` heuristic's exact→DFT switch for PT(h)
    // on general trees: with the incremental engine, exact cost grows with
    // h² while the 40-term mixture's cost is h-independent. Re-run this
    // grid when touching either path; the measured medians justify
    // `AUTO_DFT_MIN_H` in `prf_core::query`.
    use prf_core::query::{Algorithm, RankQuery};
    use prf_core::DftApproxConfig;
    let tree = syn_med_tree(10_000, 3);
    let mut g = c.benchmark_group("pt_exact_vs_dft_10k");
    g.sample_size(3);
    for h in [128usize, 256, 512] {
        g.bench_with_input(BenchmarkId::new("exact_incremental", h), &h, |b, &h| {
            b.iter(|| {
                black_box(
                    RankQuery::pt(h)
                        .algorithm(Algorithm::ExactGf)
                        .run(&tree)
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("dft_mixture_40", h), &h, |b, &h| {
            b.iter(|| {
                black_box(
                    RankQuery::pt(h)
                        .algorithm(Algorithm::DftApprox(DftApproxConfig::refined(40)))
                        .run(&tree)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_refold_prf,
    bench_pt_exact_vs_dft,
    bench_incremental_vs_recompute,
    bench_xtuple_fast_path,
    bench_tree_scaling
);
criterion_main!(benches);
