//! Criterion benchmarks for the numeric substrate: the Appendix B.1
//! polynomial-product strategies and the scaled-arithmetic overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prf_numeric::{Complex, GfValue, Poly, Scaled};

fn bench_poly_products(c: &mut Criterion) {
    // Appendix B.1: naive sequential vs divide-and-conquer (+FFT) product
    // of many linear factors.
    let mut g = c.benchmark_group("poly_product_of_linears");
    g.sample_size(10);
    for k in [256usize, 1024] {
        let factors: Vec<Poly> = (0..k)
            .map(|i| Poly::linear(0.3 + (i % 7) as f64 * 0.1, 0.7))
            .collect();
        g.bench_with_input(BenchmarkId::new("sequential", k), &factors, |b, f| {
            b.iter(|| black_box(Poly::product_sequential(f)))
        });
        g.bench_with_input(
            BenchmarkId::new("divide_conquer_fft", k),
            &factors,
            |b, f| b.iter(|| black_box(Poly::product(f.clone()))),
        );
    }
    g.finish();
}

fn bench_fft_multiply(c: &mut Criterion) {
    // The naive→FFT crossover grid that backs `poly::FFT_CUTOFF` — the
    // measured per-size medians are recorded in EXPERIMENTS.md; re-run this
    // group after touching the FFT or the schoolbook kernel.
    let mut g = c.benchmark_group("poly_pair_multiply");
    g.sample_size(20);
    for n in [128usize, 256, 512, 1024, 2048, 4096] {
        let a = Poly::from_coeffs((0..n).map(|i| (i as f64 * 0.37).sin()).collect());
        let b = Poly::from_coeffs((0..n).map(|i| (i as f64 * 0.11).cos()).collect());
        g.bench_with_input(
            BenchmarkId::new("naive", n),
            &(a.clone(), b.clone()),
            |bch, (a, b)| bch.iter(|| black_box(a.mul_naive(b))),
        );
        g.bench_with_input(BenchmarkId::new("fft", n), &(a, b), |bch, (a, b)| {
            bch.iter(|| black_box(a.mul_fft(b)))
        });
    }
    g.finish();
}

fn bench_scaled_overhead(c: &mut Criterion) {
    // How much does underflow-proof arithmetic cost per operation?
    let mut g = c.benchmark_group("scalar_product_chain_100k");
    g.sample_size(20);
    let factors: Vec<f64> = (0..100_000)
        .map(|i| 0.5 + (i % 10) as f64 * 0.049)
        .collect();
    g.bench_function("plain_f64", |b| {
        b.iter(|| {
            let mut acc = 1.0f64;
            for &f in &factors {
                acc *= f;
            }
            black_box(acc)
        })
    });
    g.bench_function("scaled_f64", |b| {
        b.iter(|| {
            let mut acc = Scaled::<f64>::one();
            for &f in &factors {
                acc = acc.mul(&Scaled::new(f));
            }
            black_box(acc)
        })
    });
    g.bench_function("scaled_complex", |b| {
        b.iter(|| {
            let mut acc = Scaled::<Complex>::one();
            for &f in &factors {
                acc = acc.mul(&Scaled::new(Complex::real(f)));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_poly_products,
    bench_fft_multiply,
    bench_scaled_overhead
);
criterion_main!(benches);
