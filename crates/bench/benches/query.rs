//! Criterion micro-benchmarks for the unified `RankQuery` engine.
//!
//! Two questions:
//! 1. **Builder overhead** — a `RankQuery` run must cost the same as the
//!    direct kernel call it wraps (the engine adds one enum dispatch, a
//!    couple of allocations for the report, and two `Instant::now` calls).
//! 2. **`Auto` selection** — what the heuristic picks on the Syn-IND /
//!    Syn-XOR generators, and that resolving the choice is effectively
//!    free.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prf_core::independent::{prf_rank, prfe_rank_log};
use prf_core::query::{Algorithm, ProbabilisticRelation, RankQuery};
use prf_core::topk::{Ranking, ValueOrder};
use prf_core::weights::StepWeight;
use prf_datasets::{syn_ind, syn_xor_tree};

fn bench_builder_overhead(c: &mut Criterion) {
    let db = syn_ind(20_000, 11);
    let mut g = c.benchmark_group("query_overhead_20k");
    g.sample_size(20);

    // PRFe(0.95) in the log domain: direct kernel + ranking vs engine.
    g.bench_function("prfe_log/direct", |b| {
        b.iter(|| black_box(Ranking::from_keys(&prfe_rank_log(&db, 0.95))))
    });
    g.bench_function("prfe_log/engine", |b| {
        b.iter(|| {
            black_box(
                RankQuery::prfe(0.95)
                    .algorithm(Algorithm::LogDomain)
                    .run(&db)
                    .expect("log-domain PRFe"),
            )
        })
    });

    // PT(100): direct kernel + ranking vs engine.
    g.bench_function("pt100/direct", |b| {
        b.iter(|| {
            black_box(Ranking::from_values(
                &prf_rank(&db, &StepWeight { h: 100 }),
                ValueOrder::RealPart,
            ))
        })
    });
    g.bench_function("pt100/engine", |b| {
        b.iter(|| black_box(RankQuery::pt(100).run(&db).expect("exact PT")))
    });
    g.finish();
}

fn bench_auto_selection(c: &mut Criterion) {
    let ind = syn_ind(100_000, 13);
    let xor = syn_xor_tree(50_000, 13);
    // Document what Auto currently picks at these scales (printed once so
    // `cargo bench` output records the decision alongside the timings).
    let q = RankQuery::prfe(0.95);
    println!(
        "Auto picks for PRFe(0.95): Syn-IND-100k → {:?}, Syn-XOR-50k → {:?}",
        q.resolve_algorithm(&ind).expect("compatible"),
        q.resolve_algorithm(&xor).expect("compatible"),
    );

    let mut g = c.benchmark_group("query_auto");
    g.sample_size(20);
    // The resolution itself must be effectively free.
    g.bench_function("resolve/syn_ind_100k", |b| {
        b.iter(|| black_box(q.resolve_algorithm(&ind).expect("compatible")))
    });
    // End-to-end Auto vs the pinned algorithm it selects.
    g.bench_function("prfe_auto/syn_ind_100k", |b| {
        b.iter(|| black_box(RankQuery::prfe(0.95).run(&ind).expect("PRFe")))
    });
    g.bench_function("prfe_pinned_log/syn_ind_100k", |b| {
        b.iter(|| {
            black_box(
                RankQuery::prfe(0.95)
                    .algorithm(Algorithm::LogDomain)
                    .run(&ind)
                    .expect("PRFe"),
            )
        })
    });
    g.bench_function("prfe_auto/syn_xor_50k", |b| {
        b.iter(|| black_box(RankQuery::prfe(0.95).run(&xor).expect("PRFe")))
    });
    g.bench_function("pt100_auto/syn_xor_50k", |b| {
        b.iter(|| black_box(RankQuery::pt(100).run(&xor).expect("PT")))
    });
    let _ = ProbabilisticRelation::correlation_class(&xor);
    g.finish();
}

criterion_group!(benches, bench_builder_overhead, bench_auto_selection);
criterion_main!(benches);
