//! Criterion benchmarks for batched multi-query execution: one
//! [`QueryBatch`] over a shared score-order walk vs the same queries run
//! sequentially. The acceptance workload (EXPERIMENTS.md "Batched
//! queries") is a serving-style mix of k ≥ 4 semantics on the Syn-MED
//! 10k tree — the batch must come in well under 0.5× the summed
//! single-query times, because every weight-based entry shares ONE
//! truncated-polynomial walk and every PRFe/E-Rank entry rides along as a
//! scalar evaluation point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prf_core::query::{Algorithm, QueryBatch, RankQuery};
use prf_core::weights::TabulatedWeight;
use prf_datasets::{syn_ind, syn_med_tree};

/// The acceptance mix: six semantics — PT at two horizons, a learned-style
/// PRFω(100), PRFe at two α, and E-Rank.
fn tree_mix() -> Vec<RankQuery> {
    let omega: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64)).collect();
    vec![
        RankQuery::pt(100),
        RankQuery::pt(75),
        RankQuery::prf(TabulatedWeight::from_real(&omega)),
        RankQuery::prfe(0.95).algorithm(Algorithm::ExactGf),
        RankQuery::prfe(0.85).algorithm(Algorithm::ExactGf),
        RankQuery::erank(),
    ]
}

fn bench_batch_vs_sequential_tree(c: &mut Criterion) {
    let tree = syn_med_tree(10_000, 3);
    let queries = tree_mix();
    let mut g = c.benchmark_group("batch_syn_med_10k");
    g.sample_size(3); // each iteration walks 10k tuples with h=100 polys
    g.bench_function("batch_6_semantics", |b| {
        b.iter(|| {
            black_box(
                QueryBatch::new()
                    .add_queries(queries.iter().cloned())
                    .run(&tree)
                    .expect("batch on Syn-MED"),
            )
        })
    });
    g.bench_function("sequential_6_semantics", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(q.run(&tree).expect("single query on Syn-MED"));
            }
        })
    });
    g.finish();
}

fn bench_batch_vs_sequential_independent(c: &mut Criterion) {
    // The independent fast path: shared sort + one prefix polynomial at
    // the max horizon + O(1)-per-step PRFe accumulators.
    let db = syn_ind(100_000, 3);
    let queries = vec![
        RankQuery::pt(100),
        RankQuery::pt(50),
        RankQuery::prfe(0.95),
        RankQuery::prfe(0.5),
        RankQuery::erank(),
    ];
    let mut g = c.benchmark_group("batch_syn_ind_100k");
    g.sample_size(10);
    g.bench_function("batch_5_semantics", |b| {
        b.iter(|| {
            black_box(
                QueryBatch::new()
                    .add_queries(queries.iter().cloned())
                    .run(&db)
                    .expect("batch on Syn-IND"),
            )
        })
    });
    g.bench_function("sequential_5_semantics", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(q.run(&db).expect("single query on Syn-IND"));
            }
        })
    });
    g.finish();
}

fn bench_batch_parallel(c: &mut Criterion) {
    // The sharded walk: the whole consumer set fast-forwards per shard.
    let tree = syn_med_tree(10_000, 3);
    let queries = tree_mix();
    let mut g = c.benchmark_group("batch_syn_med_10k_parallel");
    g.sample_size(3);
    for threads in [2usize, 4] {
        g.bench_function(format!("batch_6_semantics/{threads}_threads"), |b| {
            b.iter(|| {
                black_box(
                    QueryBatch::new()
                        .add_queries(queries.iter().cloned())
                        .parallel(threads)
                        .run(&tree)
                        .expect("parallel batch on Syn-MED"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_batch_vs_sequential_tree,
    bench_batch_vs_sequential_independent,
    bench_batch_parallel
);
criterion_main!(benches);
