//! Criterion benchmarks for the Section 9 algorithms: the Markov-chain
//! specialisation vs the generic junction-tree DP (the paper's
//! O(n³) vs O(n⁴·2^tw) trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prf_graphical::{rank_distributions_network, MarkovChain};

fn make_chain(m: usize) -> MarkovChain {
    let transitions = (0..m - 1)
        .map(|j| {
            let stay = 0.6 + 0.3 * ((j % 5) as f64 / 5.0);
            [[stay, 1.0 - stay], [1.0 - stay, stay]]
        })
        .collect();
    MarkovChain::new([0.45, 0.55], transitions)
}

fn scores(m: usize) -> Vec<f64> {
    (0..m).map(|i| ((i * 7919) % m) as f64).collect()
}

fn bench_chain_specialisation(c: &mut Criterion) {
    let mut g = c.benchmark_group("markov_rank_distributions");
    g.sample_size(10);
    for m in [40usize, 80] {
        let chain = make_chain(m);
        let sc = scores(m);
        g.bench_with_input(
            BenchmarkId::new("chain_O_n3", m),
            &(&chain, &sc),
            |b, (chain, sc)| b.iter(|| black_box(chain.rank_distributions(sc))),
        );
        let net = chain.to_network();
        g.bench_with_input(
            BenchmarkId::new("junction_generic", m),
            &(&net, &sc),
            |b, (net, sc)| b.iter(|| black_box(rank_distributions_network(net, sc))),
        );
    }
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("junction_calibrate");
    g.sample_size(20);
    for m in [100usize, 400] {
        let net = make_chain(m).to_network();
        g.bench_with_input(BenchmarkId::from_parameter(m), &net, |b, net| {
            b.iter(|| black_box(net.junction_tree()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chain_specialisation, bench_calibration);
criterion_main!(benches);
