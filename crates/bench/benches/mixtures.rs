//! Criterion benchmarks for the PRFe-mixture pipeline (Figure 11(ii)
//! kernels) and the Kendall metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prf_approx::{approximate_weights, DftApproxConfig};
use prf_baselines::pt_ranking;
use prf_datasets::iip_db;
use prf_metrics::{kendall_topk, kendall_topk_naive};

fn bench_mixture_construction(c: &mut Criterion) {
    let h = 1000;
    let step = move |i: usize| if i < h { 1.0 } else { 0.0 };
    let mut g = c.benchmark_group("mixture_construction_h1000");
    g.sample_size(10);
    for l in [20usize, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| black_box(approximate_weights(&step, h, &DftApproxConfig::refined(l))))
        });
    }
    g.finish();
}

fn bench_mixture_ranking(c: &mut Criterion) {
    let db = iip_db(50_000, 1);
    let h = 1000;
    let step = move |i: usize| if i < h { 1.0 } else { 0.0 };
    let mix = approximate_weights(&step, h, &DftApproxConfig::refined(20));
    let mut g = c.benchmark_group("rank_pt1000_50k");
    g.sample_size(10);
    g.bench_function("exact_pt", |b| b.iter(|| black_box(pt_ranking(&db, h))));
    g.bench_function("mixture_w20_scaled", |b| {
        b.iter(|| black_box(mix.ranking_independent(&db)))
    });
    g.bench_function("mixture_w20_fast", |b| {
        b.iter(|| black_box(mix.ranking_independent_fast(&db)))
    });
    g.finish();
}

fn bench_kendall(c: &mut Criterion) {
    let db = iip_db(30_000, 1);
    let a = pt_ranking(&db, 1000).top_k_u32(1000);
    let b_list = pt_ranking(&db, 10).top_k_u32(1000);
    let mut g = c.benchmark_group("kendall_top1000");
    g.sample_size(20);
    g.bench_function("fenwick_nlogn", |bch| {
        bch.iter(|| black_box(kendall_topk(&a, &b_list, 1000)))
    });
    g.bench_function("naive_quadratic", |bch| {
        bch.iter(|| black_box(kendall_topk_naive(&a, &b_list, 1000)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mixture_construction,
    bench_mixture_ranking,
    bench_kendall
);
criterion_main!(benches);
