//! Criterion micro-benchmarks for the independent-tuple ranking kernels —
//! the algorithms behind Table 1 and Figure 11(i).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prf_baselines::{erank_ranking, pt_ranking, urank_topk, utop_topk};
use prf_core::independent::{prfe_rank, prfe_rank_log, prfe_rank_scaled};
use prf_datasets::iip_db;
use prf_numeric::Complex;

fn bench_prfe_variants(c: &mut Criterion) {
    let db = iip_db(20_000, 1);
    let mut g = c.benchmark_group("prfe_independent");
    g.sample_size(20);
    g.bench_function("plain_complex", |b| {
        b.iter(|| black_box(prfe_rank(&db, Complex::real(0.95))))
    });
    g.bench_function("log_space", |b| {
        b.iter(|| black_box(prfe_rank_log(&db, 0.95)))
    });
    g.bench_function("scaled", |b| {
        b.iter(|| black_box(prfe_rank_scaled(&db, Complex::real(0.95))))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let db = iip_db(20_000, 1);
    let mut g = c.benchmark_group("baselines_20k");
    g.sample_size(15);
    for h in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("pt", h), &h, |b, &h| {
            b.iter(|| black_box(pt_ranking(&db, h)))
        });
    }
    for k in [10usize, 100] {
        g.bench_with_input(BenchmarkId::new("urank", k), &k, |b, &k| {
            b.iter(|| black_box(urank_topk(&db, k)))
        });
    }
    g.bench_function("erank", |b| b.iter(|| black_box(erank_ranking(&db))));
    g.bench_function("utop_k100", |b| b.iter(|| black_box(utop_topk(&db, 100))));
    g.finish();
}

fn bench_scaling_in_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("prfe_scaling");
    g.sample_size(10);
    for n in [10_000usize, 40_000, 160_000] {
        let db = iip_db(n, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| black_box(prfe_rank_log(db, 0.95)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_prfe_variants,
    bench_baselines,
    bench_scaling_in_n
);
criterion_main!(benches);
