//! Criterion benchmarks for the serving layer: a [`RankServer`] replaying
//! a mixed-semantics trace from 1/4/16 concurrent client threads vs the
//! same trace dispatched as individual [`RankQuery`] runs.
//!
//! The acceptance workload (EXPERIMENTS.md "Serving layer") is the
//! Syn-MED 10k tree with a 24-query trace mixing PT at several horizons,
//! a tabulated PRFω, PRFe at several α, and E-Rank — the shapes a serving
//! mix actually interleaves. Batched serving must reach **≥ 1.5×** the
//! single-dispatch throughput: with a 2 ms deadline the whole trace
//! collapses into a handful of flushes, each one shared score-order walk.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::thread;
use std::time::Duration;

use prf_core::query::{Algorithm, RankQuery};
use prf_core::weights::TabulatedWeight;
use prf_datasets::syn_med_tree;
use prf_serve::{QueryError, RankServer, ServeConfig, SubmitOptions};

/// `true` under `cargo bench` (measure mode), `false` under `cargo test`
/// (smoke mode) — the same flag the criterion shim keys on. Smoke mode
/// shrinks the workload: CI only needs every code path exercised once,
/// not the acceptance-sized measurement.
fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// The mixed-semantics serving trace: `len` queries cycling through six
/// shared-walk shapes (every one exact on the tree backend).
fn trace(len: usize) -> Vec<RankQuery> {
    let omega: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64)).collect();
    (0..len)
        .map(|i| match i % 6 {
            0 => RankQuery::pt(100),
            1 => RankQuery::pt(25 + (i % 4) * 25),
            2 => RankQuery::prf(TabulatedWeight::from_real(&omega)),
            3 => RankQuery::prfe(0.95).algorithm(Algorithm::ExactGf),
            4 => RankQuery::prfe(0.80 + 0.01 * (i % 10) as f64).algorithm(Algorithm::ExactGf),
            _ => RankQuery::erank(),
        })
        .collect()
}

/// Replays the trace through a fresh server from `clients` threads,
/// blocking on every response (so a benchmark iteration measures complete
/// end-to-end service, shutdown included).
fn replay(tree: &prf_pdb::AndXorTree, queries: &[RankQuery], clients: usize) {
    // Cache off: the trace repeats query shapes, and this group measures
    // walk sharing, not result reuse (that's `serve_cache`).
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_millis(2))
            .max_batch(32)
            .cache_enabled(false),
    );
    let rel = server.register("syn-med", tree.clone());
    thread::scope(|s| {
        for c in 0..clients {
            let server = &server;
            s.spawn(move || {
                for (i, q) in queries.iter().enumerate() {
                    if i % clients != c {
                        continue;
                    }
                    let handle = server.submit(rel, q.clone()).expect("server is up");
                    black_box(handle.recv().expect("query succeeds"));
                }
            });
        }
    });
    server.shutdown();
}

fn bench_serve_vs_single_dispatch(c: &mut Criterion) {
    // Acceptance size (Syn-MED 10k, 24 queries) when measuring; a small
    // stand-in under `cargo test` so the smoke pass stays fast in debug.
    let (n, len) = if measure_mode() {
        (10_000, 24)
    } else {
        (500, 12)
    };
    let tree = syn_med_tree(n, 3);
    let queries = trace(len);
    let mut g = c.benchmark_group("serve_syn_med_10k");
    g.sample_size(3); // each iteration answers 24 queries over 10k tuples

    g.bench_function("single_dispatch_24", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(q.run(&tree).expect("single query on Syn-MED"));
            }
        })
    });
    for clients in [1usize, 4, 16] {
        g.bench_function(format!("served_24/{clients}_clients"), |b| {
            b.iter(|| replay(&tree, &queries, clients))
        });
    }
    g.finish();
}

/// Serving layer v2: a multi-relation trace with 16 clients, 1 worker vs
/// 4 — one worker serializes every relation's flushes behind each other;
/// the pool overlaps them, which is where the v2 throughput comes from.
fn bench_serve_worker_pool(c: &mut Criterion) {
    let (n, len) = if measure_mode() {
        (10_000, 24)
    } else {
        (500, 12)
    };
    let trees: Vec<prf_pdb::AndXorTree> = [n / 2, n / 3, n / 6]
        .iter()
        .map(|&m| syn_med_tree(m, 3))
        .collect();
    let queries = trace(3 * len);
    let mut g = c.benchmark_group("serve_multi_relation_16_clients");
    g.sample_size(3);
    for workers in [1usize, 4] {
        g.bench_function(format!("{workers}_workers"), |b| {
            b.iter(|| {
                let server = RankServer::new(
                    ServeConfig::new()
                        .max_delay(Duration::from_millis(2))
                        .max_batch(32)
                        .workers(workers)
                        .cache_enabled(false),
                );
                let rels: Vec<_> = trees
                    .iter()
                    .enumerate()
                    .map(|(i, t)| server.register(format!("syn-med-{i}"), t.clone()))
                    .collect();
                thread::scope(|s| {
                    for c in 0..16usize {
                        let server = &server;
                        let rels = &rels;
                        let queries = &queries;
                        s.spawn(move || {
                            for (i, q) in queries.iter().enumerate() {
                                if i % 16 != c {
                                    continue;
                                }
                                let handle =
                                    server.submit(rels[i % 3], q.clone()).expect("server is up");
                                black_box(handle.recv().expect("query succeeds"));
                            }
                        });
                    }
                });
                server.shutdown();
            })
        });
    }
    g.finish();
}

fn bench_serve_latency_floor(c: &mut Criterion) {
    // The other end of the spectrum: a single client, zero deadline — the
    // server degenerates to immediate dispatch, so this pins the serving
    // layer's per-query overhead (queueing, wake-up, channel hop) against
    // a direct run of the same query.
    let tree = syn_med_tree(2_000, 3);
    let q = RankQuery::prfe(0.9).algorithm(Algorithm::ExactGf);
    let mut g = c.benchmark_group("serve_overhead_syn_med_2k");
    g.sample_size(10);
    g.bench_function("direct_prfe", |b| {
        b.iter(|| black_box(q.run(&tree).expect("direct")))
    });
    g.bench_function("served_prfe_zero_deadline", |b| {
        // Cache off: every iteration repeats the same query, and the floor
        // being pinned is the *evaluated* round trip.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::ZERO)
                .cache_enabled(false),
        );
        let rel = server.register("syn-med-2k", tree.clone());
        b.iter(|| {
            black_box(
                server
                    .submit(rel, q.clone())
                    .expect("server is up")
                    .recv()
                    .expect("query succeeds"),
            )
        });
        server.shutdown();
    });
    g.finish();
}

/// Deadline classes (serving v3): what per-query deadline tracking costs,
/// and what an expired deadline saves.
///
/// * `tracked_vs_plain` — the same zero-deadline PRF^e round-trip through
///   `submit_with(SubmitOptions::deadline(..))` vs plain `submit`: the
///   tracked path allocates a cancel token and checks it at dequeue, and
///   that delta is the whole timeout-enforcement overhead.
/// * `expired_shed` — a burst of 64 already-expired submissions resolves
///   entirely to `TimedOut` at dequeue, *without* touching the kernels;
///   against the same burst evaluated for real, the gap is the work an
///   enforced deadline sheds.
fn bench_serve_deadline_classes(c: &mut Criterion) {
    let n = if measure_mode() { 2_000 } else { 300 };
    let tree = syn_med_tree(n, 3);
    let q = RankQuery::prfe(0.9).algorithm(Algorithm::ExactGf);
    let mut g = c.benchmark_group("serve_deadline_classes");
    g.sample_size(10);

    g.bench_function("plain_prfe_zero_deadline", |b| {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::ZERO)
                .cache_enabled(false),
        );
        let rel = server.register("syn-med", tree.clone());
        b.iter(|| {
            black_box(
                server
                    .submit(rel, q.clone())
                    .expect("server is up")
                    .recv()
                    .expect("query succeeds"),
            )
        });
        server.shutdown();
    });
    g.bench_function("tracked_prfe_zero_deadline", |b| {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::ZERO)
                .cache_enabled(false),
        );
        let rel = server.register("syn-med", tree.clone());
        let opts = SubmitOptions::new().deadline(Duration::from_secs(3600));
        b.iter(|| {
            black_box(
                server
                    .submit_with(rel, q.clone(), opts)
                    .expect("server is up")
                    .recv()
                    .expect("query succeeds"),
            )
        });
        server.shutdown();
    });

    let burst = if measure_mode() { 64usize } else { 8 };
    g.bench_function(format!("expired_shed_{burst}"), |b| {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_millis(1))
                .max_batch(burst),
        );
        let rel = server.register("syn-med", tree.clone());
        let opts = SubmitOptions::new().deadline(Duration::ZERO);
        b.iter(|| {
            let handles: Vec<_> = (0..burst)
                .map(|_| {
                    server
                        .submit_with(rel, q.clone(), opts)
                        .expect("server is up")
                })
                .collect();
            for h in handles {
                assert!(matches!(h.recv(), Err(QueryError::TimedOut)));
            }
        });
        server.shutdown();
    });
    g.bench_function(format!("evaluated_burst_{burst}"), |b| {
        // Cache (and with it coalescing) off: the burst is 64 *identical*
        // queries, and this side of the comparison must evaluate them all.
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_millis(1))
                .max_batch(burst)
                .cache_enabled(false),
        );
        let rel = server.register("syn-med", tree.clone());
        b.iter(|| {
            let handles: Vec<_> = (0..burst)
                .map(|_| server.submit(rel, q.clone()).expect("server is up"))
                .collect();
            for h in handles {
                black_box(h.recv().expect("query succeeds"));
            }
        });
        server.shutdown();
    });
    g.finish();
}

/// Result cache: a repeated identical query on an unchanged relation is
/// served straight from the per-relation cache — no walk, no batch plan.
///
/// * `repeat_evaluated_cache_off` — the baseline: the same PRF^e query
///   round-tripped with the cache disabled, re-evaluated every time.
/// * `repeat_cache_hit` — the cache warm, every iteration a hit (asserted
///   through `served_from_cache` and the `cache_hits` counter).
///
/// Beyond the criterion numbers, the group **enforces** the acceptance
/// bound outright: on the 10k-tuple relation the cached round trip must be
/// at least 10× faster than re-evaluating (in practice it is orders of
/// magnitude — microseconds of channel hop against a 10k-tuple walk).
fn bench_serve_cache(c: &mut Criterion) {
    let n = if measure_mode() { 10_000 } else { 2_000 };
    let tree = syn_med_tree(n, 3);
    let q = RankQuery::prfe(0.9).algorithm(Algorithm::ExactGf);
    let mut g = c.benchmark_group("serve_cache");
    g.sample_size(10);

    g.bench_function("repeat_evaluated_cache_off", |b| {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::ZERO)
                .cache_enabled(false),
        );
        let rel = server.register("syn-med", tree.clone());
        b.iter(|| {
            let r = server
                .submit(rel, q.clone())
                .expect("server is up")
                .recv()
                .expect("query succeeds");
            assert!(!r.report.serve.as_ref().expect("served").served_from_cache);
            black_box(r)
        });
        server.shutdown();
    });
    g.bench_function("repeat_cache_hit", |b| {
        let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
        let rel = server.register("syn-med", tree.clone());
        // Warm: the first submission evaluates and populates the cache.
        server
            .submit(rel, q.clone())
            .expect("server is up")
            .recv()
            .expect("warm-up succeeds");
        b.iter(|| {
            let r = server
                .submit(rel, q.clone())
                .expect("server is up")
                .recv()
                .expect("query succeeds");
            assert!(r.report.serve.as_ref().expect("served").served_from_cache);
            black_box(r)
        });
        assert!(server.metrics().cache_hits > 0, "hits were really counted");
        server.shutdown();
    });
    g.finish();

    // The enforced bound. Minimum evaluated time (most favorable to the
    // baseline) against the median cached time: ≥ 10× is a generous floor
    // for a walk vs a lookup, and holds in debug smoke builds too.
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
    let rel = server.register("syn-med", tree.clone());
    let timed = |expect_hit: bool| {
        let start = std::time::Instant::now();
        let r = server
            .submit(rel, q.clone())
            .expect("server is up")
            .recv()
            .expect("query succeeds");
        assert_eq!(
            r.report.serve.as_ref().expect("served").served_from_cache,
            expect_hit
        );
        start.elapsed()
    };
    let evaluated = timed(false); // cold: populates the cache
    let mut hits: Vec<Duration> = (0..15).map(|_| timed(true)).collect();
    hits.sort();
    let hit_median = hits[hits.len() / 2];
    let metrics = server.metrics();
    assert!(metrics.cache_hits >= 15, "every repeat hit the cache");
    server.shutdown();
    assert!(
        evaluated >= 10 * hit_median,
        "cached round trip must be ≥10× faster: evaluated {evaluated:?}, hit median {hit_median:?}"
    );
}

criterion_group!(
    benches,
    bench_serve_vs_single_dispatch,
    bench_serve_worker_pool,
    bench_serve_latency_floor,
    bench_serve_deadline_classes,
    bench_serve_cache
);
criterion_main!(benches);
