//! Criterion benchmarks for the live-relation mutation pipeline: a
//! single-tuple reweight followed by a requery against [`LiveRelation`]'s
//! patched caches (log keys + merged ranking) vs tearing the backend down
//! and rebuilding it. The acceptance workload (EXPERIMENTS.md "Live
//! relations") is n = 10⁴ with a PRFe(0.95) log-domain requery — the live
//! path must beat the rebuild by ≥ 10×, which it only does because the
//! requery serves a merged (never re-sorted) ranking in O(n).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prf_core::live::{LiveRelation, Mutation};
use prf_core::query::{Algorithm, RankQuery};
use prf_pdb::{IndependentDb, TupleId};

const N: usize = 10_000;
const ALPHA: f64 = 0.95;

/// Distinct scores, well-separated probabilities — the same shape the
/// `experiments live` scenario and tests/live_equivalence.rs use.
fn seeded_pairs(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            (
                n as f64 - i as f64,
                0.05 + 0.9 * ((i * 7919) % 997) as f64 / 997.0,
            )
        })
        .collect()
}

/// The reweight each iteration applies: cycle a deterministic tuple/prob
/// stream so the relation never drifts toward a degenerate state.
fn churn(step: usize) -> (usize, f64) {
    (
        (step * 4099) % N,
        0.02 + 0.95 * ((step * 131) % 89) as f64 / 89.0,
    )
}

fn bench_reweight_requery(c: &mut Criterion) {
    let query = RankQuery::prfe(ALPHA).algorithm(Algorithm::LogDomain);
    let mut g = c.benchmark_group("live_reweight_10k");

    let live = LiveRelation::new(IndependentDb::from_pairs(seeded_pairs(N)).unwrap());
    query.run(&live).unwrap(); // warm the log-key cache: the serving steady state
    let mut step = 0usize;
    g.bench_function("live_reweight_then_requery", |b| {
        b.iter(|| {
            let (t, p) = churn(step);
            step += 1;
            live.apply(&Mutation::Reweight(TupleId(t as u32), p))
                .unwrap();
            black_box(query.run(&live).unwrap())
        })
    });

    let mut pairs = seeded_pairs(N);
    let mut step = 0usize;
    g.bench_function("rebuild_then_query", |b| {
        b.iter(|| {
            let (t, p) = churn(step);
            step += 1;
            pairs[t].1 = p;
            let db = IndependentDb::from_pairs(pairs.clone()).unwrap();
            black_box(query.run(&db).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_reweight_requery);
criterion_main!(benches);
