//! Criterion benchmarks for [`ShardedRelation`]: the fig 11(i) serving
//! batch (PRFe(0.95) + PT(100) + E-Rank as one top-100 `QueryBatch`) on
//! the IIP instance, unsharded vs 4 score-contiguous shards, each
//! sharded configuration running `w` shard-pool workers plus
//! `QueryBatch::parallel(w)` batch threads (which also fan the per-entry
//! finalization out over scoped threads), plus one shard's standalone
//! walk (the phase-B critical path on an idle multi-core host).
//!
//! Reading the numbers: on a multi-core host the `sharded_4x/*_workers`
//! p50s fall with the worker count directly. On a single-core host (the
//! CI container) they coincide — wall ≈ total work there, so the scaling
//! signal is modeled instead from the measured work partition (walk
//! critical path + finalize critical path + remainder), which is what
//! EXPERIMENTS.md's `shard` scenario prints from its own measurements.
//! The `sharded_4x/1_workers : unsharded` ratio is the monoid's work
//! overhead (phase A's presence-GF pass — a second data pass for PT's
//! coefficient prefix).
//!
//! Measure mode runs the paper-scale n = 10⁶; smoke mode (CI test job)
//! shrinks to n = 20 000 so the debug-profile single pass stays fast.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use prf_core::query::{Algorithm, ProbabilisticRelation, QueryBatch, RankQuery};
use prf_core::{ShardHandle, ShardedRelation};
use prf_datasets::iip_db;
use prf_pdb::IndependentDb;

const SEED: u64 = 20090412;
const SHARDS: usize = 4;
const TOP_K: usize = 100;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn sorted_pairs(n: usize) -> Vec<(f64, f64)> {
    let db = iip_db(n, SEED);
    let mut pairs: Vec<(f64, f64)> = db
        .tuple_scores()
        .into_iter()
        .zip(db.tuple_marginals())
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    pairs
}

fn slice_db(pairs: &[(f64, f64)]) -> IndependentDb {
    IndependentDb::from_pairs(pairs.iter().copied()).expect("valid pairs")
}

fn equal_shards(pairs: &[(f64, f64)]) -> Vec<ShardHandle> {
    let n = pairs.len();
    (0..SHARDS)
        .map(|i| Arc::new(slice_db(&pairs[i * n / SHARDS..(i + 1) * n / SHARDS])) as ShardHandle)
        .collect()
}

fn fig11_batch() -> Vec<RankQuery> {
    vec![
        RankQuery::prfe(0.95).algorithm(Algorithm::LogDomain),
        RankQuery::pt(100),
        RankQuery::erank(),
    ]
}

fn run_batch(rel: &(impl ProbabilisticRelation + ?Sized), queries: &[RankQuery], threads: usize) {
    black_box(
        QueryBatch::new()
            .add_queries(queries.iter().cloned())
            .top_k(TOP_K)
            .parallel(threads)
            .run(rel)
            .expect("independent backends"),
    );
}

fn bench_shard_scaling(c: &mut Criterion) {
    let n = if measure_mode() { 1_000_000 } else { 20_000 };
    let pairs = sorted_pairs(n);
    let queries = fig11_batch();
    let unsharded = slice_db(&pairs);
    let one_shard = slice_db(&pairs[..n / SHARDS]);

    let mut g = c.benchmark_group(format!("shard_scaling_iip_{n}"));
    g.sample_size(3);
    g.bench_function("unsharded", |b| {
        b.iter(|| run_batch(&unsharded, &queries, 1))
    });
    for workers in [1usize, 2, 4] {
        let sharded = ShardedRelation::new(equal_shards(&pairs), workers).expect("contiguous");
        g.bench_function(format!("sharded_4x/{workers}_workers"), |b| {
            b.iter(|| run_batch(&sharded, &queries, workers))
        });
    }
    // One quarter walked alone: the per-shard phase-B term of the modeled
    // critical path on idle cores (see the module docs).
    g.bench_function("one_shard_standalone", |b| {
        b.iter(|| run_batch(&one_shard, &queries, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
