//! Figure 8 — ranking quality of PRFe-mixture approximations.
//!
//! (i) Approximating PT(1000) (k = 1000): Kendall distance between the
//! exact PT top-k and the mixture top-k, per pipeline stage and number of
//! terms L. The paper's raw DFT sits near 0.8 (useless); the refined
//! pipeline drops under 0.1 by L ≈ 20.
//!
//! (ii) Quality vs L for three weight shapes — PT(1000), a smooth function
//! and a linear function — at two dataset sizes. Smooth functions need
//! fewer terms.

use prf_approx::DftApproxConfig;
use prf_core::query::{Algorithm, RankQuery};
use prf_core::topk::ValueOrder;
use prf_core::weights::TabulatedWeight;
use prf_datasets::iip_db;
use prf_metrics::kendall_topk;
use prf_pdb::IndependentDb;

use crate::{fmt, header, Scale, SEED};

/// Distance between the exact ranking of `omega` (given as a table) and its
/// mixture approximation under `cfg` — the same PRFω query with the
/// `DftApprox` algorithm swapped in.
pub fn mixture_distance(
    db: &IndependentDb,
    omega_table: &[f64],
    exact_topk: &[u32],
    cfg: &DftApproxConfig,
    k: usize,
) -> f64 {
    let approx = RankQuery::prf(TabulatedWeight::from_real(omega_table))
        .algorithm(Algorithm::DftApprox(*cfg))
        .run(db)
        .expect("mixture PRFω on independent data")
        .ranking
        .top_k_u32(k);
    kendall_topk(exact_topk, &approx, k)
}

/// Exact PRFω(h) top-k for a weight table.
pub fn exact_topk(db: &IndependentDb, omega_table: &[f64], k: usize) -> Vec<u32> {
    RankQuery::prf(TabulatedWeight::from_real(omega_table))
        .value_order(ValueOrder::RealPart)
        .algorithm(Algorithm::ExactGf)
        .run(db)
        .expect("exact PRFω on independent data")
        .ranking
        .top_k_u32(k)
}

/// Runs the Figure 8 experiment.
#[allow(clippy::type_complexity)]
pub fn run(scale: Scale) {
    header("Figure 8(i): approximating PT(1000) with L PRFe terms");
    let n = scale.pick(100_000, 100_000);
    let h = 1000;
    let k = 1000;
    let db = iip_db(n, SEED);
    let step: Vec<f64> = vec![1.0; h];
    let exact = RankQuery::pt(h)
        .algorithm(Algorithm::ExactGf)
        .run(&db)
        .expect("exact PT")
        .ranking
        .top_k_u32(k);

    let terms = [10usize, 20, 40, 80, 120, 200];
    let stages: Vec<(&str, fn(usize) -> DftApproxConfig)> = vec![
        ("DFT", DftApproxConfig::dft_only),
        ("DFT+DF", DftApproxConfig::dft_df),
        ("DFT+DF+IS", DftApproxConfig::dft_df_is),
        ("DFT+DF+IS+ES", DftApproxConfig::full),
        ("refined(LS)", DftApproxConfig::refined),
    ];
    print!("{:>14}", "stage \\ L");
    for l in terms {
        print!("{l:>8}");
    }
    println!();
    for (name, mk) in &stages {
        print!("{name:>14}");
        for &l in &terms {
            let d = mixture_distance(&db, &step, &exact, &mk(l), k);
            print!("{:>8}", fmt(d));
        }
        println!();
    }

    header("Figure 8(ii): quality vs L for three weight shapes");
    let shapes: Vec<(&str, Vec<f64>)> = vec![
        ("PT(1000)", vec![1.0; h]),
        (
            "sfunc",
            (0..h)
                .map(|i| {
                    let t = i as f64 / h as f64;
                    0.5 * (1.0 + (std::f64::consts::PI * t).cos())
                })
                .collect(),
        ),
        (
            "linear",
            (0..h).map(|i| (h - i) as f64 / h as f64).collect(),
        ),
    ];
    let sizes = match scale {
        Scale::Quick => vec![n],
        Scale::Full => vec![100_000, 1_000_000],
    };
    for size in sizes {
        let db = iip_db(size, SEED);
        println!("\nn = {size}, k = {k} (refined pipeline):");
        print!("{:>10}", "shape \\ L");
        for l in terms {
            print!("{l:>8}");
        }
        println!();
        for (name, table) in &shapes {
            let exact = exact_topk(&db, table, k);
            print!("{name:>10}");
            for &l in &terms {
                let d = mixture_distance(&db, table, &exact, &DftApproxConfig::refined(l), k);
                print!("{:>8}", fmt(d));
            }
            println!();
        }
    }
    println!(
        "\nShape check (paper): L = 40 suffices for Kendall < 0.1 on every \
         shape; the smooth and linear functions converge fastest."
    );
}
