//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <table1|fig4|fig5|fig7|fig8|fig9|fig10|fig11|serve|live|shard|all> [--scale quick|full]
//! ```

use prf_bench::{timed, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => Scale::Full,
                    Some("quick") => Scale::Quick,
                    other => {
                        eprintln!("unknown scale {other:?}; use quick|full");
                        std::process::exit(2);
                    }
                };
            }
            name => which.push(name.to_string()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_string());
    }

    let run_one = |name: &str| -> bool {
        match name {
            "table1" => prf_bench::table1::run(scale),
            "fig4" => prf_bench::fig4::run(scale),
            "fig5" => prf_bench::fig5::run(scale),
            "fig7" => prf_bench::fig7::run(scale),
            "fig8" => prf_bench::fig8::run(scale),
            "fig9" => prf_bench::fig9::run(scale),
            "fig10" => prf_bench::fig10::run(scale),
            "fig11" => prf_bench::fig11::run(scale),
            "serve" => prf_bench::serve::run(scale),
            "live" => prf_bench::live::run(scale),
            "shard" => prf_bench::shard::run(scale),
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!(
                    "available: table1 fig4 fig5 fig7 fig8 fig9 fig10 fig11 serve live shard all"
                );
                return false;
            }
        }
        true
    };

    for name in &which {
        if name == "all" {
            for exp in [
                "table1", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "serve",
                "live", "shard",
            ] {
                let (_, t) = timed(|| run_one(exp));
                println!("\n[{exp} completed in {t:.1}s]");
            }
        } else {
            let (ok, t) = timed(|| run_one(name));
            if !ok {
                std::process::exit(2);
            }
            println!("\n[{name} completed in {t:.1}s]");
        }
    }
}
