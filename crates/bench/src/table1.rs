//! Table 1 — normalized Kendall distance between the top-100 answers of
//! five prior ranking functions on IIP-100,000 and Syn-IND-100,000.
//!
//! The paper's headline observation: the functions return *wildly different*
//! answers (distances up to ≈0.95), with dataset-dependent affinities —
//! E-Score tracks PT/U-Rank on IIP but diverges on Syn-IND, E-Rank sits far
//! from everything on IIP yet nearly coincides with E-Score on Syn-IND.

use prf_core::query::RankQuery;
use prf_datasets::{iip_db, syn_ind};
use prf_metrics::kendall_topk;
use prf_pdb::IndependentDb;

use crate::{fmt, header, Scale, SEED};

/// The five ranking functions of Table 1, producing top-k lists of raw ids —
/// all evaluated through the unified [`RankQuery`] engine.
pub fn table1_answers(db: &IndependentDb, h: usize, k: usize) -> Vec<(&'static str, Vec<u32>)> {
    let top = |q: RankQuery| {
        q.run(db)
            .expect("independent backend supports every semantics")
            .ranking
            .top_k_u32(k)
    };
    vec![
        ("E-Score", top(RankQuery::escore())),
        ("PT(h)", top(RankQuery::pt(h))),
        ("U-Rank", top(RankQuery::urank(k))),
        ("E-Rank", top(RankQuery::erank())),
        (
            "U-Top",
            RankQuery::utop(k)
                .run(db)
                .ok()
                .and_then(|r| r.set)
                .map(|s| s.members.iter().map(|t| t.0).collect())
                .unwrap_or_default(),
        ),
    ]
}

/// The pairwise distance matrix for one dataset.
pub fn distance_matrix(db: &IndependentDb, k: usize) -> (Vec<&'static str>, Vec<Vec<f64>>) {
    let answers = table1_answers(db, k, k);
    let names: Vec<&'static str> = answers.iter().map(|(n, _)| *n).collect();
    let m = answers.len();
    let mut matrix = vec![vec![0.0; m]; m];
    for i in 0..m {
        for j in 0..m {
            if i != j {
                matrix[i][j] = kendall_topk(&answers[i].1, &answers[j].1, k);
            }
        }
    }
    (names, matrix)
}

fn print_matrix(title: &str, names: &[&str], matrix: &[Vec<f64>]) {
    println!("\n{title} (k = 100, normalized Kendall distance)");
    print!("{:>10}", "");
    for n in names {
        print!("{n:>10}");
    }
    println!();
    for (i, row) in matrix.iter().enumerate() {
        print!("{:>10}", names[i]);
        for (j, &d) in row.iter().enumerate() {
            if i == j {
                print!("{:>10}", "-");
            } else {
                print!("{:>10}", fmt(d));
            }
        }
        println!();
    }
}

/// Runs the Table 1 experiment.
pub fn run(scale: Scale) {
    header("Table 1: pairwise Kendall distance between ranking functions");
    let n = scale.pick(100_000, 100_000);
    let k = 100;

    let iip = iip_db(n, SEED);
    let (names, m1) = distance_matrix(&iip, k);
    print_matrix(&format!("IIP-{n}"), &names, &m1);

    let syn = syn_ind(n, SEED + 1);
    let (names2, m2) = distance_matrix(&syn, k);
    print_matrix(&format!("Syn-IND-{n}"), &names2, &m2);

    // The paper's qualitative take-aways, checked programmatically so the
    // harness fails loudly if the reproduction drifts.
    let idx = |name: &str| names.iter().position(|&n| n == name).expect("known name");
    let (escore, erank) = (idx("E-Score"), idx("E-Rank"));
    println!(
        "\nSyn-IND: E-Rank vs E-Score = {} (paper: 0.0044 — nearly identical)",
        fmt(m2[erank][escore])
    );
    println!(
        "IIP: E-Rank vs E-Score = {} (paper: 0.7992 — far apart)",
        fmt(m1[erank][escore])
    );
}
