//! Experiment harness for the `prf` workspace.
//!
//! One module per table/figure of the paper's evaluation (Section 8 and the
//! Table 1 comparison of Section 3.2), plus shared scaffolding. Run via
//!
//! ```text
//! cargo run --release -p prf-bench --bin experiments -- <experiment> [--scale full]
//! ```
//!
//! where `<experiment>` ∈ `table1 | fig4 | fig5 | fig7 | fig8 | fig9 |
//! fig10 | fig11 | serve | live | shard | all`. The default `quick` scale
//! finishes in minutes and preserves every qualitative shape; `full`
//! matches the paper's dataset sizes (up to 10⁶ tuples) where that is
//! feasible. EXPERIMENTS.md records the outputs next to the paper's
//! numbers. The `serve`, `live` and `shard` scenarios go beyond the
//! paper: `serve` replays a mixed-semantics trace through `prf-serve`'s
//! deadline-batched `RankServer` and compares throughput with
//! single-query dispatch; `shard` measures the fig 11-style scaling of a
//! `ShardedRelation` over 1/2/4 shard workers.

#![deny(missing_docs)]

pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod live;
pub mod serve;
pub mod shard;
pub mod table1;

use std::time::Instant;

/// Experiment scale: `Quick` shrinks datasets so the whole suite runs in
/// minutes; `Full` reproduces the paper's sizes where feasible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly defaults.
    Quick,
    /// Paper-sized runs.
    Full,
}

impl Scale {
    /// Picks a size by scale.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats a float for table output.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

/// The seed used by every experiment (reproducibility).
pub const SEED: u64 = 20090412;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn timing_is_positive() {
        let (v, t) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(t >= 0.0);
    }
}
