//! Sharded-relation scaling — a Figure 11-style scenario for
//! [`ShardedRelation`].
//!
//! The IIP instance (score-descending) is split into 4 equal
//! score-contiguous `IndependentDb` shards and the fig 11(i) serving
//! batch — PRFe(0.95), PT(100), E-Rank as ONE `QueryBatch`, truncated to
//! the top-100 answers a server would return — runs over a serving
//! configuration of `w` shard-pool workers **and** `w` batch threads
//! (`QueryBatch::parallel(w)`, which also fans the per-entry
//! finalization out over scoped threads).
//!
//! Two kinds of numbers are reported, both measured:
//!
//! * **wall** — elapsed time per configuration. Only meaningful as a
//!   scaling signal on a multi-core host: on a single-core machine every
//!   worker count walls about the same (pool and threads serialize), and
//!   what the sharded-vs-unsharded ratio shows instead is the *work
//!   overhead* of sharding (phase A computes each shard's presence GF —
//!   for coefficient consumers like PT that is a second pass over the
//!   data).
//! * **model** — the speedup implied by the measured work partition. The
//!   1-worker run decomposes exactly through the batch reports: the
//!   merged walk (`BatchCost::walk_seconds` — phase A + phase B, all
//!   pool jobs over 4 equal shards), each entry's finalization
//!   (`total_seconds − kernel_seconds` — independent per entry, fanned
//!   out by `parallel(w)`), and an unparallelized remainder. The modeled
//!   `w`-worker wall is `walk·⌈4/w⌉/4 + (finalize round-robin critical
//!   path over w threads) + remainder`. On one core wall ≈ total work,
//!   so this is the speedup an otherwise-idle `w`-core host would see.

use std::sync::Arc;

use prf_core::query::{Algorithm, ProbabilisticRelation, QueryBatch, RankQuery};
use prf_core::{ShardHandle, ShardedRelation};
use prf_datasets::iip_db;
use prf_pdb::IndependentDb;

use crate::{header, timed, Scale, SEED};

const SHARDS: usize = 4;
const TOP_K: usize = 100;

fn secs(t: f64) -> String {
    if t < 0.001 {
        format!("{:.1}ms", t * 1000.0)
    } else if t < 1.0 {
        format!("{:.0}ms", t * 1000.0)
    } else {
        format!("{t:.2}s")
    }
}

/// The IIP instance's `(score, prob)` pairs, score-descending, so equal
/// slices are score-contiguous shards and shard-major ids match the
/// unsharded relation's.
fn sorted_pairs(n: usize) -> Vec<(f64, f64)> {
    let db = iip_db(n, SEED);
    let mut pairs: Vec<(f64, f64)> = db
        .tuple_scores()
        .into_iter()
        .zip(db.tuple_marginals())
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    pairs
}

fn slice_db(pairs: &[(f64, f64)]) -> IndependentDb {
    IndependentDb::from_pairs(pairs.iter().copied()).expect("valid pairs")
}

fn equal_shards(pairs: &[(f64, f64)], k: usize) -> Vec<ShardHandle> {
    let n = pairs.len();
    (0..k)
        .map(|i| Arc::new(slice_db(&pairs[i * n / k..(i + 1) * n / k])) as ShardHandle)
        .collect()
}

/// The fig 11(i) serving batch: a point consumer, a coefficient consumer
/// and the E-Rank dual point, all off one shared walk, answering with the
/// top-100 prefix a server would return.
fn batch_queries() -> Vec<RankQuery> {
    vec![
        RankQuery::prfe(0.95).algorithm(Algorithm::LogDomain),
        RankQuery::pt(100),
        RankQuery::erank(),
    ]
}

/// Best-of-3 timed batch runs (first-touch page faults and allocator
/// warm-up dominate a cold run at n = 10⁶): the best wall, its shared
/// walk seconds (from the batch cost attribution), and each entry's
/// finalize seconds.
fn time_batch(rel: &(impl ProbabilisticRelation + ?Sized), threads: usize) -> (f64, f64, Vec<f64>) {
    let queries = batch_queries();
    let mut best = (f64::INFINITY, 0.0, Vec::new());
    for _ in 0..3 {
        let (results, wall) = timed(|| {
            QueryBatch::new()
                .add_queries(queries.iter().cloned())
                .top_k(TOP_K)
                .parallel(threads)
                .run(rel)
                .expect("independent backends")
        });
        if wall < best.0 {
            let walk = results
                .iter()
                .filter_map(|r| r.report.batch.map(|c| c.walk_seconds))
                .fold(0.0f64, f64::max);
            let fins = results
                .iter()
                .map(|r| r.report.total_seconds - r.report.kernel_seconds)
                .collect();
            best = (wall, walk, fins);
        }
    }
    best
}

/// Round-robin critical path: thread `j` of `w` finalizes entries
/// `j, j+w, …`; the slowest thread bounds the finalize stage.
fn critical_path(costs: &[f64], w: usize) -> f64 {
    (0..w)
        .map(|j| costs.iter().skip(j).step_by(w).sum::<f64>())
        .fold(0.0f64, f64::max)
}

/// Runs the sharded-scaling experiment.
pub fn run(scale: Scale) {
    header("Sharded relations: fig 11(i)-style scaling (IIP, 4 score-contiguous shards)");
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![100_000, 200_000],
        Scale::Full => vec![500_000, 1_000_000],
    };
    println!(
        "batch = PRFe(.95) + PT(100) + E-Rank as one top-100 QueryBatch;\n\
         config w = w shard-pool workers + parallel(w) batch threads; walls\n\
         are elapsed; 'model Nw' = measured-work speedup an idle N-core\n\
         host would see (walk/⌈4/N⌉ + finalize critical path + remainder;\n\
         see module docs)"
    );
    println!(
        "{:>10}{:>11}{:>9}{:>9}{:>9}{:>7}{:>10}{:>10}",
        "n", "unsharded", "4sh/1w", "4sh/2w", "4sh/4w", "ovh", "model 2w", "model 4w"
    );
    for &n in &sizes {
        let pairs = sorted_pairs(n);
        let (t_unsharded, _, _) = time_batch(&slice_db(&pairs), 1);
        let mut walls = Vec::new();
        let mut walk1 = 0.0;
        let mut fins1 = Vec::new();
        for w in [1usize, 2, 4] {
            let sharded =
                ShardedRelation::new(equal_shards(&pairs, SHARDS), w).expect("contiguous");
            let (wall, walk, fins) = time_batch(&sharded, w);
            if w == 1 {
                walk1 = walk;
                fins1 = fins;
            }
            walls.push(wall);
        }
        // The 1-worker decomposition: pool-parallel walk, thread-parallel
        // finalize, and whatever neither covers (answer take, reporting).
        let other = (walls[0] - walk1 - fins1.iter().sum::<f64>()).max(0.0);
        let model = |w: usize| {
            let walk_cp = walk1 * (SHARDS.div_ceil(w) as f64) / SHARDS as f64;
            walls[0] / (walk_cp + critical_path(&fins1, w) + other)
        };
        println!(
            "{n:>10}{:>11}{:>9}{:>9}{:>9}{:>7}{:>10}{:>10}",
            secs(t_unsharded),
            secs(walls[0]),
            secs(walls[1]),
            secs(walls[2]),
            format!("{:.2}x", walls[0] / t_unsharded),
            format!("{:.2}x", model(2)),
            format!("{:.2}x", model(4)),
        );
    }
    println!(
        "\n(ovh = 1-worker sharded wall vs unsharded — the monoid's extra\n\
         work, dominated by phase A's presence-GF pass for PT's coefficient\n\
         prefix; on a single-core host the three walls coincide and ovh is\n\
         the whole story, on w cores the wall tracks the model column)"
    );
}
