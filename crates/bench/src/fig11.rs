//! Figure 11 — execution-time comparisons.
//!
//! (i) PRFe(0.95), PT(100), U-Rank (k ∈ {10, 50, 100}) and E-Rank on IIP
//! datasets of increasing size: PRFe and E-Rank are effectively linear
//! scans; PT(h)/U-Rank grow with h·n and k·n.
//!
//! (ii) Exact PT(h) vs its L-term PRFe-mixture approximations: at large h
//! the mixture is orders of magnitude faster — the paper's headline 1 hour
//! → 24 seconds anecdote.
//!
//! (iii) The same comparison on correlated data (Syn-XOR with the x-tuple
//! fast path, Syn-HIGH with the generic O(n²·h) expansion), plus the
//! incremental tree PRFe.

use prf_approx::{approximate_weights, DftApproxConfig};
use prf_core::query::{Algorithm, QueryBatch, RankQuery};
use prf_datasets::{iip_db, syn_high_tree, syn_xor_tree};

use crate::{header, timed, Scale, SEED};

fn secs(t: f64) -> String {
    if t < 0.001 {
        format!("{:.1}ms", t * 1000.0)
    } else if t < 1.0 {
        format!("{:.0}ms", t * 1000.0)
    } else {
        format!("{t:.2}s")
    }
}

/// Runs the Figure 11 experiments.
pub fn run(scale: Scale) {
    header("Figure 11(i): execution time vs dataset size (IIP)");
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![20_000, 40_000, 60_000, 80_000, 100_000],
        Scale::Full => vec![200_000, 400_000, 600_000, 800_000, 1_000_000],
    };
    println!(
        "{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}{:>8}",
        "n", "PRFe(.95)", "PT(100)", "U-Rank k=10", "k=50", "k=100", "E-Rank", "batch", "ratio"
    );
    for &n in &sizes {
        let db = iip_db(n, SEED);
        // Every timing goes through the unified engine (LogDomain is what
        // Auto picks for real-α PRFe at these sizes).
        let queries = [
            RankQuery::prfe(0.95).algorithm(Algorithm::LogDomain),
            RankQuery::pt(100),
            RankQuery::urank(10),
            RankQuery::urank(50),
            RankQuery::urank(100),
            RankQuery::erank(),
        ];
        let times: Vec<f64> = queries
            .iter()
            .map(|q| timed(|| q.run(&db).expect("independent backend")).1)
            .collect();
        // The same six queries as ONE batch over a shared walk — the
        // serving-workload amortization the batch engine exists for.
        let (_, t_batch) = timed(|| {
            QueryBatch::new()
                .add_queries(queries.iter().cloned())
                .run(&db)
                .expect("independent backend")
        });
        let t_seq: f64 = times.iter().sum();
        print!("{n:>10}");
        for t in &times {
            print!("{:>12}", secs(*t));
        }
        println!(
            "{:>12}{:>8}",
            secs(t_batch),
            format!("{:.2}x", t_batch / t_seq)
        );
    }
    println!("(batch = all six queries in one QueryBatch; ratio vs their summed times)");

    header("Figure 11(ii): exact PT(h) vs PRFe-mixture approximations");
    let hs: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 10_000],
        Scale::Full => vec![1_000, 10_000],
    };
    let sizes2: Vec<usize> = match scale {
        Scale::Quick => vec![50_000, 100_000],
        Scale::Full => vec![100_000, 500_000, 1_000_000],
    };
    for &h in &hs {
        println!("\nh = {h} (mixtures use the refined pipeline):");
        println!(
            "{:>10}{:>14}{:>10}{:>10}{:>10}",
            "n", "exact PT(h)", "w20", "w50", "w100"
        );
        // Mixture construction is independent of n; build once per L.
        let step = move |i: usize| if i < h { 1.0 } else { 0.0 };
        let mixes: Vec<_> = [20usize, 50, 100]
            .iter()
            .map(|&l| approximate_weights(&step, h, &DftApproxConfig::refined(l)))
            .collect();
        for &n in &sizes2 {
            let db = iip_db(n, SEED);
            let (_, t_exact) = timed(|| RankQuery::pt(h).run(&db).expect("exact PT"));
            let mut cells = vec![format!("{n:>10}"), format!("{:>14}", secs(t_exact))];
            for mix in &mixes {
                let (_, t) = timed(|| mix.ranking_independent_fast(&db));
                cells.push(format!("{:>10}", secs(t)));
            }
            println!("{}", cells.join(""));
        }
    }

    header("Figure 11(iii): correlated datasets (k = 1000 regime)");
    // Syn-XOR rides the O(n·h) x-tuple fast path; Syn-HIGH pays the generic
    // O(n²·h) expansion and is therefore run at smaller n (the paper's
    // qualitative point — exact PT on correlated data is orders of magnitude
    // slower than the mixture — shows regardless).
    let h3 = 1000;
    let xor_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![20_000, 50_000, 100_000],
        Scale::Full => vec![20_000, 50_000, 100_000],
    };
    let step3 = move |i: usize| if i < h3 { 1.0 } else { 0.0 };
    let mix20 = approximate_weights(&step3, h3, &DftApproxConfig::refined(20));
    let mix50 = approximate_weights(&step3, h3, &DftApproxConfig::refined(50));
    println!(
        "{:>10}{:>10}{:>16}{:>10}{:>10}{:>10}",
        "dataset", "n", "exact PT(1000)", "w20", "w50", "PRFe"
    );
    for &n in &xor_sizes {
        let tree = syn_xor_tree(n, SEED);
        let (_, t_pt) = timed(|| RankQuery::pt(h3).run(&tree).expect("exact PT on trees"));
        let (_, t20) = timed(|| mix20.ranking_tree_fast(&tree));
        let (_, t50) = timed(|| mix50.ranking_tree_fast(&tree));
        let (_, t_pe) = timed(|| {
            RankQuery::prfe(0.95)
                .algorithm(Algorithm::Scaled)
                .run(&tree)
                .expect("scaled PRFe on trees")
        });
        println!(
            "{:>10}{n:>10}{:>16}{:>10}{:>10}{:>10}",
            "Syn-XOR",
            secs(t_pt),
            secs(t20),
            secs(t50),
            secs(t_pe)
        );
    }
    let high_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 2_000],
        Scale::Full => vec![2_000, 5_000],
    };
    for &n in &high_sizes {
        let tree = syn_high_tree(n, SEED);
        let (_, t_pt) = timed(|| {
            RankQuery::pt(h3)
                .algorithm(Algorithm::ExactGf)
                .run(&tree)
                .expect("exact PT on trees")
        });
        let (_, t20) = timed(|| mix20.ranking_tree_fast(&tree));
        let (_, t50) = timed(|| mix50.ranking_tree_fast(&tree));
        let (_, t_pe) = timed(|| {
            RankQuery::prfe(0.95)
                .algorithm(Algorithm::Scaled)
                .run(&tree)
                .expect("scaled PRFe on trees")
        });
        println!(
            "{:>10}{n:>10}{:>16}{:>10}{:>10}{:>10}",
            "Syn-HIGH",
            secs(t_pt),
            secs(t20),
            secs(t50),
            secs(t_pe)
        );
    }
    println!(
        "\nShape check (paper): PRFe and the mixtures are near-linear and \
         orders of magnitude faster than exact PT at large h, on both \
         independent and correlated data."
    );
}
