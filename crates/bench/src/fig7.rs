//! Figure 7 — how the PRFe(α) spectrum relates to the other ranking
//! functions as `α = 1 − 0.9^i` sweeps towards 1.
//!
//! For each α on the sweep, the Kendall distance between PRFe(α)'s top-100
//! and each baseline's top-100. The paper's reading: PRFe starts near the
//! score/top-1 ranking for small α, ends at the probability ranking at
//! α = 1, and passes close to every other function somewhere in between —
//! with a "uni-valley" distance curve that justifies the grid-search
//! learner.

use prf_baselines::{probability_ranking, score_ranking};
use prf_core::query::{Algorithm, QueryBatch, RankQuery, Semantics};
use prf_datasets::{iip_db, syn_ind};
use prf_metrics::kendall_topk;
use prf_pdb::IndependentDb;

use crate::{fmt, header, Scale, SEED};

/// The baselines of Figure 7 as `(name, top-k ids)`. Four semantics run
/// through **one [`QueryBatch`]**: PT(h) and E-Rank share its score-order
/// walk, while E-Score (closed form) and U-Rank (candidate tables) ride
/// along as individually evaluated entries of the same call. Score/Prob,
/// the two deterministic endpoints, stay free functions, and U-Top (set
/// semantics) is evaluated separately so a missing set answer degrades
/// gracefully instead of failing the batch.
pub fn baselines(db: &IndependentDb, h: usize, k: usize) -> Vec<(&'static str, Vec<u32>)> {
    let batch = QueryBatch::new()
        .add(Semantics::EScore)
        .add(Semantics::Pt(h))
        .add(Semantics::URank(k))
        .add(Semantics::ERank)
        .run(db)
        .expect("independent backend supports every semantics");
    let mut tops = batch.into_iter().map(|r| r.ranking.top_k_u32(k));
    vec![
        ("Score", score_ranking(db).top_k_u32(k)),
        ("Prob", probability_ranking(db).top_k_u32(k)),
        ("E-Score", tops.next().expect("4 batched answers")),
        ("PT(100)", tops.next().expect("4 batched answers")),
        ("U-Rank", tops.next().expect("4 batched answers")),
        ("E-Rank", tops.next().expect("4 batched answers")),
        (
            "U-Top",
            RankQuery::utop(k)
                .run(db)
                .ok()
                .and_then(|r| r.set)
                .map(|s| s.members.iter().map(|t| t.0).collect())
                .unwrap_or_default(),
        ),
    ]
}

/// One sweep: for each `i` in `points`, α = 1 − 0.9^i, the distances from
/// PRFe(α) to every baseline.
pub fn sweep(
    db: &IndependentDb,
    points: &[f64],
    k: usize,
) -> (Vec<&'static str>, Vec<(f64, Vec<f64>)>) {
    let base = baselines(db, k, k);
    let names: Vec<&'static str> = base.iter().map(|(n, _)| *n).collect();
    let mut rows = Vec::with_capacity(points.len());
    for &i in points {
        let alpha = (1.0 - 0.9f64.powf(i)).clamp(0.0, 1.0);
        let mine = RankQuery::prfe(alpha)
            .algorithm(Algorithm::LogDomain)
            .run(db)
            .expect("log-domain PRFe on independent data")
            .ranking
            .top_k_u32(k);
        let dists: Vec<f64> = base
            .iter()
            .map(|(_, b)| kendall_topk(&mine, b, k))
            .collect();
        rows.push((i, dists));
    }
    (names, rows)
}

fn print_sweep(title: &str, names: &[&str], rows: &[(f64, Vec<f64>)]) {
    println!("\n{title} (α = 1 − 0.9^i, top-100 Kendall distance to PRFe(α))");
    print!("{:>6}{:>8}", "i", "alpha");
    for n in names {
        print!("{n:>9}");
    }
    println!();
    for (i, dists) in rows {
        let alpha = 1.0 - 0.9f64.powf(*i);
        print!("{i:>6}{:>8}", format!("{alpha:.4}"));
        for d in dists {
            print!("{:>9}", fmt(*d));
        }
        println!();
    }
}

/// Runs the Figure 7 experiment.
pub fn run(scale: Scale) {
    header("Figure 7: PRFe(α) vs other ranking functions across the α sweep");
    let k = 100;
    let mut points: Vec<f64> = (0..=20).map(|j| j as f64 * 10.0).collect();
    points.extend([1.0, 3.0, 5.0, 15.0, 25.0]);
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    points.dedup();

    let n_iip = scale.pick(100_000, 100_000);
    let iip = iip_db(n_iip, SEED);
    let (names, rows) = sweep(&iip, &points, k);
    print_sweep(&format!("IIP-{n_iip}"), &names, &rows);
    summarize(&names, &rows);

    let syn = syn_ind(1000, SEED + 1);
    let (names2, rows2) = sweep(&syn, &points, k);
    print_sweep("Syn-IND-1000", &names2, &rows2);
    summarize(&names2, &rows2);
}

/// Prints, per baseline, the sweep position where PRFe comes closest —
/// the "PRFe can approximate each of them somewhere" reading of Figure 7.
fn summarize(names: &[&str], rows: &[(f64, Vec<f64>)]) {
    println!("closest approach per function:");
    for (j, name) in names.iter().enumerate() {
        let (best_i, best_d) = rows
            .iter()
            .map(|(i, d)| (*i, d[j]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty sweep");
        println!(
            "  {name:>8}: min distance {} at i = {best_i} (α = {:.4})",
            fmt(best_d),
            1.0 - 0.9f64.powf(best_i)
        );
    }
}
