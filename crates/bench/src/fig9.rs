//! Figure 9 — learning ranking functions from user preferences.
//!
//! (i) Learning PRFe's α: a "user" ranks a random sample of the dataset
//! with one of five functions; the grid-search learner fits α on the
//! sample; quality is the Kendall distance between PRFe(α̂)'s top-100 and
//! the user function's top-100 on the *full* dataset.
//!
//! (ii) Learning PRFω(h) weights from small samples (≤ 200, the scale at
//! which the paper's SVM-light stays tractable) with the pairwise
//! hinge-loss learner, evaluated the same way.

use prf_approx::learn::{learn_prf_omega, learn_prfe_alpha_topk, RankLearnConfig};
use prf_core::query::{Algorithm, QueryBatch, RankQuery};
use prf_core::topk::ValueOrder;
use prf_core::weights::TabulatedWeight;
use prf_datasets::{iip_db, subsample_independent};
use prf_metrics::kendall_topk;
use prf_pdb::{IndependentDb, TupleId};

use crate::{fmt, header, Scale, SEED};

/// The five "user functions" of Figure 9 as full rankings of one relation,
/// computed with **one [`QueryBatch`]** per relation — the six underlying
/// queries (PT(100), log-domain PRFe(.95), E-Score, U-Rank + its PT
/// extension, E-Rank) share a single score-order walk.
pub fn user_rankings(db: &IndependentDb) -> Vec<(&'static str, Vec<TupleId>)> {
    // U-Rank produces a top-k list; extend it to a full ranking by
    // appending the rest in PT order (ties in practice immaterial for the
    // top-100 comparison).
    let ku = db.len().min(400);
    let results = QueryBatch::new()
        .add_query(RankQuery::pt(100.min(db.len().max(1))))
        .add_query(RankQuery::prfe(0.95).algorithm(Algorithm::LogDomain))
        .add_query(RankQuery::escore())
        .add_query(RankQuery::urank(ku))
        .add_query(RankQuery::pt(ku.max(1)))
        .add_query(RankQuery::erank())
        .run(db)
        .expect("independent backend supports every semantics");
    let order_of = |i: usize| results[i].ranking.order().to_vec();
    let mut urank = order_of(3);
    let rest: Vec<TupleId> = order_of(4)
        .into_iter()
        .filter(|t| !urank.contains(t))
        .collect();
    urank.extend(rest);
    vec![
        ("PT(100)", order_of(0)),
        ("PRFe(.95)", order_of(1)),
        ("E-Score", order_of(2)),
        ("U-Rank", urank),
        ("E-Rank", order_of(5)),
    ]
}

/// Runs the Figure 9 experiments.
pub fn run(scale: Scale) {
    header("Figure 9(i): learning PRFe(α) from ranked samples");
    let n = scale.pick(100_000, 100_000);
    let k = 100;
    let db = iip_db(n, SEED);
    let sample_sizes = [1_000usize, 10_000, 100_000];
    // The full-dataset "truth" rankings: one batched walk, computed once.
    let truth_full = user_rankings(&db);

    print!("{:>10}", "samples");
    for (name, _) in &truth_full {
        print!("{name:>17}");
    }
    println!("   (Kendall distance of PRFe(α̂) top-100 to the user's top-100, full dataset)");
    for &m in &sample_sizes {
        let m = m.min(n);
        print!("{m:>10}");
        let (sample, _) = subsample_independent(&db, m, SEED + m as u64);
        // One batched walk per sample serves every user function.
        let user_samples = user_rankings(&sample);
        for ((_, user_sample), (_, truth_order)) in user_samples.iter().zip(&truth_full) {
            // Learn α against the top-k prefix of the sample ranking — the
            // quantity the evaluation measures (see EXPERIMENTS.md).
            let alpha = learn_prfe_alpha_topk(&sample, user_sample, 4, k);
            let learned = RankQuery::prfe(alpha)
                .algorithm(Algorithm::LogDomain)
                .run(&db)
                .expect("log-domain PRFe")
                .ranking
                .top_k_u32(k);
            let truth: Vec<u32> = truth_order.iter().take(k).map(|t| t.0).collect();
            let d = kendall_topk(&learned, &truth, k);
            print!("{:>17}", format!("{} (α {:.3})", fmt(d), alpha));
        }
        println!();
    }

    header("Figure 9(ii): learning PRFω from small samples");
    let omega_samples = [50usize, 100, 200];
    print!("{:>10}", "samples");
    for (name, _) in &truth_full {
        print!("{name:>17}");
    }
    println!("   (Kendall distance of learned PRFω top-100 to the user's top-100)");
    for &m in &omega_samples {
        print!("{m:>10}");
        let (sample, _) = subsample_independent(&db, m, SEED + 31 + m as u64);
        let user_samples = user_rankings(&sample);
        for ((_, user_sample), (_, truth_order)) in user_samples.iter().zip(&truth_full) {
            let weights = learn_prf_omega(
                &sample,
                user_sample,
                &RankLearnConfig {
                    h: 100.min(m),
                    epochs: 80,
                    ..Default::default()
                },
            );
            let learned = RankQuery::prf(TabulatedWeight::from_real(&weights))
                .value_order(ValueOrder::RealPart)
                .run(&db)
                .expect("exact PRFω")
                .ranking
                .top_k_u32(k);
            let truth: Vec<u32> = truth_order.iter().take(k).map(|t| t.0).collect();
            let d = kendall_topk(&learned, &truth, k);
            print!("{:>17}", fmt(d));
        }
        println!();
    }
    println!(
        "\nShape check (paper): PRFe-teacher is learned essentially perfectly; \
         PT(100)/U-Rank are learned well from modest samples; E-Rank is hard \
         for PRFe (its α valley is extremely narrow) and E-Score is unstable \
         at small sample sizes."
    );
}
