//! Figure 9 — learning ranking functions from user preferences.
//!
//! (i) Learning PRFe's α: a "user" ranks a random sample of the dataset
//! with one of five functions; the grid-search learner fits α on the
//! sample; quality is the Kendall distance between PRFe(α̂)'s top-100 and
//! the user function's top-100 on the *full* dataset.
//!
//! (ii) Learning PRFω(h) weights from small samples (≤ 200, the scale at
//! which the paper's SVM-light stays tractable) with the pairwise
//! hinge-loss learner, evaluated the same way.

use prf_approx::learn::{learn_prf_omega, learn_prfe_alpha_topk, RankLearnConfig};
use prf_core::query::{Algorithm, RankQuery};
use prf_core::topk::ValueOrder;
use prf_core::weights::TabulatedWeight;
use prf_datasets::{iip_db, subsample_independent};
use prf_metrics::kendall_topk;
use prf_pdb::{IndependentDb, TupleId};

use crate::{fmt, header, Scale, SEED};

/// The "user functions" of Figure 9, each producing a full ranking of any
/// relation — all driven through the unified [`RankQuery`] engine.
#[allow(clippy::type_complexity)]
pub fn user_functions() -> Vec<(&'static str, fn(&IndependentDb, usize) -> Vec<TupleId>)> {
    fn order_of(q: RankQuery, db: &IndependentDb) -> Vec<TupleId> {
        q.run(db)
            .expect("independent backend supports every semantics")
            .ranking
            .order()
            .to_vec()
    }
    fn by_pt(db: &IndependentDb, k: usize) -> Vec<TupleId> {
        let _ = k;
        order_of(RankQuery::pt(100.min(db.len().max(1))), db)
    }
    fn by_prfe(db: &IndependentDb, _k: usize) -> Vec<TupleId> {
        order_of(RankQuery::prfe(0.95).algorithm(Algorithm::LogDomain), db)
    }
    fn by_escore(db: &IndependentDb, _k: usize) -> Vec<TupleId> {
        order_of(RankQuery::escore(), db)
    }
    fn by_urank(db: &IndependentDb, _k: usize) -> Vec<TupleId> {
        // U-Rank produces a top-k list; extend it to a full ranking by
        // appending the rest in PT order (ties in practice immaterial for
        // the top-100 comparison).
        let k = db.len().min(400);
        let mut order = order_of(RankQuery::urank(k), db);
        let rest: Vec<TupleId> = order_of(RankQuery::pt(k.max(1)), db)
            .into_iter()
            .filter(|t| !order.contains(t))
            .collect();
        order.extend(rest);
        order
    }
    fn by_erank(db: &IndependentDb, _k: usize) -> Vec<TupleId> {
        order_of(RankQuery::erank(), db)
    }
    vec![
        ("PT(100)", by_pt),
        ("PRFe(.95)", by_prfe),
        ("E-Score", by_escore),
        ("U-Rank", by_urank),
        ("E-Rank", by_erank),
    ]
}

/// Runs the Figure 9 experiments.
pub fn run(scale: Scale) {
    header("Figure 9(i): learning PRFe(α) from ranked samples");
    let n = scale.pick(100_000, 100_000);
    let k = 100;
    let db = iip_db(n, SEED);
    let sample_sizes = [1_000usize, 10_000, 100_000];
    let funcs = user_functions();

    print!("{:>10}", "samples");
    for (name, _) in &funcs {
        print!("{name:>17}");
    }
    println!("   (Kendall distance of PRFe(α̂) top-100 to the user's top-100, full dataset)");
    for &m in &sample_sizes {
        let m = m.min(n);
        print!("{m:>10}");
        let (sample, _) = subsample_independent(&db, m, SEED + m as u64);
        for (_, func) in &funcs {
            let user_sample = func(&sample, k);
            // Learn α against the top-k prefix of the sample ranking — the
            // quantity the evaluation measures (see EXPERIMENTS.md).
            let alpha = learn_prfe_alpha_topk(&sample, &user_sample, 4, k);
            let learned = RankQuery::prfe(alpha)
                .algorithm(Algorithm::LogDomain)
                .run(&db)
                .expect("log-domain PRFe")
                .ranking
                .top_k_u32(k);
            let truth: Vec<u32> = func(&db, k).iter().take(k).map(|t| t.0).collect();
            let d = kendall_topk(&learned, &truth, k);
            print!("{:>17}", format!("{} (α {:.3})", fmt(d), alpha));
        }
        println!();
    }

    header("Figure 9(ii): learning PRFω from small samples");
    let omega_samples = [50usize, 100, 200];
    print!("{:>10}", "samples");
    for (name, _) in &funcs {
        print!("{name:>17}");
    }
    println!("   (Kendall distance of learned PRFω top-100 to the user's top-100)");
    for &m in &omega_samples {
        print!("{m:>10}");
        let (sample, _) = subsample_independent(&db, m, SEED + 31 + m as u64);
        for (_, func) in &funcs {
            let user_sample = func(&sample, k);
            let weights = learn_prf_omega(
                &sample,
                &user_sample,
                &RankLearnConfig {
                    h: 100.min(m),
                    epochs: 80,
                    ..Default::default()
                },
            );
            let learned = RankQuery::prf(TabulatedWeight::from_real(&weights))
                .value_order(ValueOrder::RealPart)
                .run(&db)
                .expect("exact PRFω")
                .ranking
                .top_k_u32(k);
            let truth: Vec<u32> = func(&db, k).iter().take(k).map(|t| t.0).collect();
            let d = kendall_topk(&learned, &truth, k);
            print!("{:>17}", fmt(d));
        }
        println!();
    }
    println!(
        "\nShape check (paper): PRFe-teacher is learned essentially perfectly; \
         PT(100)/U-Rank are learned well from modest samples; E-Rank is hard \
         for PRFe (its α valley is extremely narrow) and E-Score is unstable \
         at small sample sizes."
    );
}
