//! The `live` scenario: evidence for the live-relation subsystem.
//!
//! Three sections, each pinning a design decision with a measurement:
//!
//! 1. **PRFe underflow probe** — for each real α, the smallest `n` at
//!    which plain-complex PRFe *actually* diverges from scaled-arithmetic
//!    ground truth, next to the analytic bound `n ≈ 620 / (−ln α)` that
//!    `Auto`'s α-aware `AUTO_PRFE_EXACT_MAX` threshold implements.
//! 2. **Reweight-then-requery vs rebuild-then-query** — single-tuple
//!    mutation latency through a [`LiveRelation`] (patched score order,
//!    marginals, and log-key cache) against rebuilding the backend and
//!    walking from scratch, at n = 10⁴.
//! 3. **Path-compression ablation** — per-update cost of the incremental
//!    engine on deep unary spines with the compressed plan
//!    ([`EvalPlan::new`]) vs the uncompressed one
//!    ([`EvalPlan::new_uncompressed`]).

use prf_core::live::{LiveRelation, Mutation};
use prf_core::query::{Algorithm, RankQuery};
use prf_core::EvalPlan;
use prf_pdb::{IndependentDb, NodeKind, TreeBuilder, TupleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{fmt, header, timed, Scale, SEED};

fn seeded_pairs(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| (1e6 - i as f64, rng.gen_range(0.02..0.98)))
        .collect()
}

/// Smallest `n` (scanning geometrically up to `cap`) where plain-complex
/// PRFe(α) ranks differently from scaled arithmetic, or `None` if it never
/// diverges below the cap.
fn first_divergence(alpha: f64, cap: usize) -> Option<usize> {
    let mut n = 32usize;
    let mut last_good = None;
    while n <= cap {
        let db = IndependentDb::from_pairs(seeded_pairs(n, SEED ^ n as u64)).unwrap();
        let exact = RankQuery::prfe(alpha)
            .algorithm(Algorithm::ExactGf)
            .run(&db)
            .unwrap();
        let scaled = RankQuery::prfe(alpha)
            .algorithm(Algorithm::Scaled)
            .run(&db)
            .unwrap();
        if exact.ranking.order() != scaled.ranking.order() {
            // Refine linearly between the last agreeing size and this one.
            let lo = last_good.unwrap_or(1);
            let mut m = lo;
            while m <= n {
                let db = IndependentDb::from_pairs(seeded_pairs(m, SEED ^ m as u64)).unwrap();
                let exact = RankQuery::prfe(alpha)
                    .algorithm(Algorithm::ExactGf)
                    .run(&db)
                    .unwrap();
                let scaled = RankQuery::prfe(alpha)
                    .algorithm(Algorithm::Scaled)
                    .run(&db)
                    .unwrap();
                if exact.ranking.order() != scaled.ranking.order() {
                    return Some(m);
                }
                m += (lo / 20).max(1);
            }
            return Some(n);
        }
        last_good = Some(n);
        n = (n * 5) / 4;
    }
    None
}

fn underflow_probe(scale: Scale) {
    header("PRFe plain-complex underflow: measured divergence vs analytic bound");
    let cap = scale.pick(20_000, 60_000);
    println!(
        "{:>8} {:>16} {:>16}",
        "alpha", "bound 620/-ln a", "measured n*"
    );
    for alpha in [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9] {
        let bound = (620.0 / -f64::ln(alpha)) as usize;
        let measured = first_divergence(alpha, cap);
        println!(
            "{:>8} {:>16} {:>16}",
            alpha,
            bound.min(cap),
            measured.map_or_else(|| format!("> {cap}"), |n| n.to_string()),
        );
    }
    println!("(n* = smallest relation size where the plain-complex ranking");
    println!(" differs from scaled ground truth; Auto's threshold caps the");
    println!(" exact route at min(4096, 620/-ln a) for real a in (0,1).)");
}

fn reweight_vs_rebuild(scale: Scale) {
    header("live reweight-then-requery vs rebuild-then-query");
    let n = scale.pick(10_000, 100_000);
    let rounds = scale.pick(50, 200);
    let alpha = 0.95;
    let mut pairs = seeded_pairs(n, SEED);
    let live = LiveRelation::new(IndependentDb::from_pairs(pairs.clone()).unwrap());
    let query = || RankQuery::prfe(alpha).algorithm(Algorithm::LogDomain);
    // Warm the log-key cache (the steady serving state).
    let warm = query().run(&live).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x11fe);

    let mut live_s = 0.0;
    let mut rebuild_s = 0.0;
    let mut last_live = warm;
    for _ in 0..rounds {
        let t = rng.gen_range(0..n);
        let p = rng.gen_range(0.02..0.98);
        let (_, s) = timed(|| {
            live.apply(&Mutation::Reweight(TupleId(t as u32), p))
                .unwrap();
            last_live = query().run(&live).unwrap();
        });
        live_s += s;
        let (_, s) = timed(|| {
            pairs[t].1 = p;
            let db = IndependentDb::from_pairs(pairs.clone()).unwrap();
            let full = query().run(&db).unwrap();
            assert_eq!(full.ranking.order(), last_live.ranking.order());
        });
        rebuild_s += s;
    }
    let per_live = live_s / rounds as f64;
    let per_rebuild = rebuild_s / rounds as f64;
    println!("n = {n}, {rounds} single-tuple reweights, PRFe({alpha}) log-domain requery:");
    println!(
        "  live   (patched order + log keys): {} s/mutation",
        fmt(per_live)
    );
    println!(
        "  rebuild (from_pairs + fresh walk): {} s/mutation",
        fmt(per_rebuild)
    );
    println!("  speedup: {:.1}x", per_rebuild / per_live);
}

/// A forest of `groups` unary spines of the given depth, one leaf each —
/// the worst case path compression exists for.
fn spine_forest(groups: usize, depth: usize) -> prf_pdb::AndXorTree {
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    for g in 0..groups {
        let mut cur = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        for d in 0..depth {
            let p = 0.995 - 0.0001 * ((g + d) % 7) as f64;
            cur = b.add_inner(cur, NodeKind::Xor, p).unwrap();
        }
        b.add_leaf(cur, 0.5, groups as f64 - g as f64).unwrap();
    }
    b.build().unwrap()
}

fn path_compression_ablation(scale: Scale) {
    header("EvalPlan path compression: per-update cost on unary spines");
    let groups = scale.pick(512, 2048);
    let updates = scale.pick(20_000, 100_000);
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "depth", "nodes(comp)", "nodes(flat)", "comp s/upd", "flat s/upd", "speedup"
    );
    for depth in [8usize, 32, 128] {
        let tree = spine_forest(groups, depth);
        let compressed = EvalPlan::new(&tree);
        let flat = EvalPlan::new_uncompressed(&tree);
        let mut rng = StdRng::seed_from_u64(SEED ^ depth as u64);
        let mut time_plan = |plan: &EvalPlan| {
            let mut gf = plan.evaluator(|_| 1.0f64);
            let mut sink = 0.0;
            let (_, s) = timed(|| {
                for _ in 0..updates {
                    let t = TupleId(rng.gen_range(0..groups) as u32);
                    gf.set_leaf(t, rng.gen_range(0.5..2.0));
                    sink += gf.root();
                }
            });
            (s / updates as f64, sink)
        };
        let (comp, sink_a) = time_plan(&compressed);
        let (unc, sink_b) = time_plan(&flat);
        assert!(sink_a.is_finite() && sink_b.is_finite());
        println!(
            "{:>6} {:>12} {:>12} {:>14} {:>14} {:>7.1}x",
            depth,
            compressed.node_count(),
            flat.node_count(),
            fmt(comp),
            fmt(unc),
            unc / comp
        );
    }
}

/// Runs the three live-relation measurements.
pub fn run(scale: Scale) {
    underflow_probe(scale);
    reweight_vs_rebuild(scale);
    path_compression_ablation(scale);
}
