//! Figure 10 — the cost of ignoring correlations.
//!
//! For each correlated dataset, compare the top-100 computed *with* the
//! and/xor-tree correlations against the top-100 computed on the
//! independent projection (same marginals, correlations dropped).
//!
//! (i) PRFe(α) across the α sweep, on all four synthetic tree datasets.
//! (ii) PRFe(0.9), PT(100) and U-Rank on Syn-LOW/MED/HIGH.
//!
//! Paper's reading: the error grows with correlation strength (HIGH ≫ MED ≫
//! LOW), stays small for x-tuples (Syn-XOR), and vanishes as α → 1 (where
//! PRFe degenerates to ranking by marginal probability).

use prf_core::query::{Algorithm, ProbabilisticRelation, QueryBatch, RankQuery};
use prf_datasets::{syn_high_tree, syn_low_tree, syn_med_tree, syn_xor_tree};
use prf_metrics::kendall_topk;
use prf_pdb::AndXorTree;

use crate::{fmt, header, Scale, SEED};

/// Kendall distance between correlation-aware and independence-assuming
/// PRFe(α) top-k on a tree — one query, two backends.
pub fn prfe_correlation_gap(tree: &AndXorTree, alpha: f64, k: usize) -> f64 {
    let q = RankQuery::prfe(alpha).algorithm(Algorithm::Scaled);
    let aware = q
        .run(tree)
        .expect("scaled PRFe on trees")
        .ranking
        .top_k_u32(k);
    let ind_db = tree.to_independent();
    let ind = q
        .run(&ind_db)
        .expect("scaled PRFe on independent data")
        .ranking
        .top_k_u32(k);
    kendall_topk(&aware, &ind, k)
}

/// Runs the Figure 10 experiments.
pub fn run(scale: Scale) {
    header("Figure 10(i): PRFe correlation sensitivity across α");
    let n = scale.pick(20_000, 100_000);
    let k = 100;
    let datasets: Vec<(&str, AndXorTree)> = vec![
        ("Syn-XOR", syn_xor_tree(n, SEED)),
        ("Syn-LOW", syn_low_tree(n, SEED)),
        ("Syn-MED", syn_med_tree(n, SEED)),
        ("Syn-HIGH", syn_high_tree(n, SEED)),
    ];
    // Stop short of α = 1.0: there PRFe degenerates to ranking by marginal
    // probability on both sides, and datasets with many exactly-tied
    // marginals (p = 1 tuples under pure-∧ paths) reduce the comparison to
    // float-roundoff tie-breaking noise.
    let mut alphas: Vec<f64> = (1..=19).map(|i| i as f64 / 20.0).collect();
    alphas.push(0.99);

    print!("{:>8}", "alpha");
    for (name, _) in &datasets {
        print!("{name:>10}");
    }
    println!("   (top-100 Kendall distance, correlated vs independent)");
    for &alpha in &alphas {
        print!("{:>8}", format!("{alpha:.2}"));
        for (_, tree) in &datasets {
            print!("{:>10}", fmt(prfe_correlation_gap(tree, alpha, k)));
        }
        println!();
    }

    header("Figure 10(ii): correlation sensitivity of PRFe(0.9), PT(100), U-Rank");
    // Exact PT/U-Rank on general trees cost O(n²·h); run at a reduced n
    // (the gap *shape* across LOW/MED/HIGH is scale-stable — see
    // EXPERIMENTS.md).
    let n2 = scale.pick(2_000, 4_000);
    let seeds = [SEED, SEED + 1, SEED + 2];
    type Gen = fn(usize, u64) -> AndXorTree;
    let small: Vec<(&str, Gen)> = vec![
        ("Syn-LOW", syn_low_tree as Gen),
        ("Syn-MED", syn_med_tree as Gen),
        ("Syn-HIGH", syn_high_tree as Gen),
    ];
    println!("(n = {n2}, k = 100, mean over {} seeds)", seeds.len());
    println!(
        "{:>10}{:>12}{:>12}{:>12}",
        "dataset", "PRFe(0.9)", "PT(100)", "U-Rank"
    );
    for (name, gen) in &small {
        let mut sums = [0.0f64; 3];
        for &seed in &seeds {
            let tree = gen(n2, seed);
            let ind_db = tree.to_independent();
            // The three semantics run as ONE batch per backend — the same
            // query set over the correlation-aware tree and its
            // independent projection, each sharing one walk.
            let topks = |rel: &dyn ProbabilisticRelation| -> Vec<Vec<u32>> {
                QueryBatch::new()
                    .add_query(RankQuery::prfe(0.9).algorithm(Algorithm::Scaled))
                    .add_query(RankQuery::pt(k).algorithm(Algorithm::ExactGf))
                    .add_query(RankQuery::urank(k))
                    .run(rel)
                    .expect("both backends support the fig10 semantics")
                    .into_iter()
                    .map(|r| r.ranking.top_k_u32(k))
                    .collect()
            };
            let aware = topks(&tree);
            let ind = topks(&ind_db);
            for (s, (a, i)) in sums.iter_mut().zip(aware.iter().zip(&ind)) {
                *s += kendall_topk(a, i, k);
            }
        }
        let m = seeds.len() as f64;
        println!(
            "{name:>10}{:>12}{:>12}{:>12}",
            fmt(sums[0] / m),
            fmt(sums[1] / m),
            fmt(sums[2] / m)
        );
    }
    println!(
        "\nShape check (paper): gaps grow LOW → MED → HIGH; Syn-XOR stays \
         small (mutually exclusive groups rarely co-populate the top-k); all \
         PRFe gaps shrink toward 0 as α → 1."
    );
}
