//! The `serve` scenario: replays a mixed-semantics query trace through the
//! deadline-batched [`RankServer`] and compares end-to-end throughput with
//! dispatching the same trace as individual queries — the serving-workload
//! experiment the paper's amortization argument (one generating-function
//! walk answering every PRF-family query) predicts and PR 4's batch layer
//! enables. Reports per-client-count wall time, speedup, queue-wait
//! distribution and the flush-trigger mix.
//!
//! The serving-layer-v2 sections measure what the flush worker pool and
//! prepared relations add: a **multi-relation** trace served with 1 vs 4
//! workers (one worker serializes every relation's flushes; the pool
//! overlaps them), and the zero-deadline per-query overhead floor.
//!
//! The result-cache section measures what the per-relation answer cache
//! saves on a repeated query (a cached round trip vs a full walk) and
//! what a mutation costs it (the next answer re-evaluates). The earlier
//! sections run with the cache **off**: their traces repeat query shapes,
//! and the quantities they pin — walk sharing, worker overlap, the
//! per-query overhead floor — are evaluation-path properties.

use std::thread;
use std::time::Duration;

use prf_core::query::{Algorithm, FlushTrigger, RankQuery};
use prf_core::weights::TabulatedWeight;
use prf_datasets::syn_med_tree;
use prf_serve::{RankServer, RelationId, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{fmt, header, timed, Scale, SEED};

/// A seeded mixed-semantics trace: the six shared-walk shapes in random
/// order, as a serving workload would interleave them.
fn trace(len: usize, seed: u64) -> Vec<RankQuery> {
    let omega: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..6) {
            0 => RankQuery::pt(100),
            1 => RankQuery::pt(25 * rng.gen_range(1usize..=4)),
            2 => RankQuery::prf(TabulatedWeight::from_real(&omega)),
            3 => RankQuery::prfe(0.95).algorithm(Algorithm::ExactGf),
            4 => RankQuery::prfe(rng.gen_range(0.5..0.99)).algorithm(Algorithm::ExactGf),
            _ => RankQuery::erank(),
        })
        .collect()
}

/// Replays `(relation, query)` pairs from `clients` threads against an
/// already-registered server; returns (wall seconds, queue-wait seconds
/// per query, queries answered per flush trigger).
fn replay_on(
    server: &RankServer,
    trace: &[(RelationId, RankQuery)],
    clients: usize,
) -> (f64, Vec<f64>, [usize; 3]) {
    let (waits, wall) = timed(|| {
        thread::scope(|s| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut waits = Vec::new();
                        for (i, (rel, q)) in trace.iter().enumerate() {
                            if i % clients != c {
                                continue;
                            }
                            let result = server
                                .submit(*rel, q.clone())
                                .expect("server is up")
                                .recv()
                                .expect("query succeeds");
                            let serve = result.report.serve.expect("provenance");
                            waits.push((serve.queue_seconds, serve.trigger));
                        }
                        waits
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("client thread"))
                .collect::<Vec<_>>()
        })
    });

    let mut triggers = [0usize; 3];
    let mut queue_waits = Vec::with_capacity(waits.len());
    for (wait, trigger) in waits {
        queue_waits.push(wait);
        let slot = match trigger {
            FlushTrigger::Deadline => 0,
            FlushTrigger::SizeLimit => 1,
            FlushTrigger::Shutdown => 2,
        };
        triggers[slot] += 1;
    }
    (wall, queue_waits, triggers)
}

fn p95(waits: &mut [f64]) -> f64 {
    waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    waits[((waits.len() as f64 * 0.95).ceil() as usize).clamp(1, waits.len()) - 1]
}

/// Runs the scenario.
pub fn run(scale: Scale) {
    header("serve: deadline-batched RankServer vs single dispatch");
    let n = scale.pick(2_000, 10_000);
    let len = scale.pick(24, 48);
    println!("Syn-MED n = {n}, mixed-semantics trace of {len} queries");
    println!("(deadline 2 ms, max batch 32, serial walks)\n");

    let tree = syn_med_tree(n, 3);
    let queries = trace(len, SEED);

    let (_, t_single) = timed(|| {
        for q in &queries {
            q.run(&tree).expect("single query");
        }
    });
    println!(
        "single dispatch      {:>9} s   ({:.1} q/s)",
        fmt(t_single),
        len as f64 / t_single
    );

    for clients in [1usize, 4, 16] {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_millis(2))
                .max_batch(32)
                .cache_enabled(false),
        );
        let rel = server.register("syn-med", tree.clone());
        let paired: Vec<_> = queries.iter().map(|q| (rel, q.clone())).collect();
        let (wall, mut waits, triggers) = replay_on(&server, &paired, clients);
        server.shutdown();
        let mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let p95 = p95(&mut waits);
        println!(
            "served, {clients:>2} clients   {:>9} s   ({:.1} q/s, {:.2}x single) \
             queue wait mean {} s / p95 {} s; triggers: deadline {} size {} shutdown {}",
            fmt(wall),
            len as f64 / wall,
            t_single / wall,
            fmt(mean),
            fmt(p95),
            triggers[0],
            triggers[1],
            triggers[2],
        );
    }
    println!(
        "\n(the 16-client row is the acceptance measurement: batched serving \
         must reach >= 1.5x single-dispatch throughput)"
    );

    // -----------------------------------------------------------------
    // Serving layer v2: multi-relation trace, 1 worker vs 4
    // -----------------------------------------------------------------
    header("serve v2: multi-relation trace, flush worker pool");
    // The same aggregate data size as the single-relation acceptance
    // trace (one Syn-MED n), split across three relations a real server
    // would host side by side.
    let sizes = [n / 2, n / 3, n / 6];
    let total = 3 * len;
    println!(
        "three Syn-MED relations (n = {}, {}, {}; {n} tuples total), \
         {total}-query mixed trace, 16 clients",
        sizes[0], sizes[1], sizes[2]
    );
    println!("(deadline 2 ms, max batch 32, prepared relations)\n");
    let trees: Vec<_> = sizes.iter().map(|&m| syn_med_tree(m, 3)).collect();
    let mixed = trace(total, SEED ^ 1);

    let mut single_worker_wall = None;
    for workers in [1usize, 4] {
        let server = RankServer::new(
            ServeConfig::new()
                .max_delay(Duration::from_millis(2))
                .max_batch(32)
                .workers(workers)
                .cache_enabled(false),
        );
        let rels: Vec<_> = trees
            .iter()
            .enumerate()
            .map(|(i, t)| server.register(format!("syn-med-{i}"), t.clone()))
            .collect();
        let paired: Vec<_> = mixed
            .iter()
            .enumerate()
            .map(|(i, q)| (rels[i % 3], q.clone()))
            .collect();
        let (wall, mut waits, triggers) = replay_on(&server, &paired, 16);
        let shed = server.metrics().shed;
        server.shutdown();
        let speedup = match single_worker_wall {
            None => {
                single_worker_wall = Some(wall);
                String::new()
            }
            Some(base) => format!(", {:.2}x one worker", base / wall),
        };
        let mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let p95 = p95(&mut waits);
        println!(
            "{workers} worker{}   {:>9} s   ({:.1} q/s{speedup}) queue wait mean {} s / p95 {} s; \
             triggers: deadline {} size {} shutdown {}; shed {shed}",
            if workers == 1 { " " } else { "s" },
            fmt(wall),
            total as f64 / wall,
            fmt(mean),
            fmt(p95),
            triggers[0],
            triggers[1],
            triggers[2],
        );
    }
    println!(
        "\n(acceptance: the 4-worker row must reach >= 2x the single-flusher \
         16-client acceptance throughput recorded for the serving layer v1 \
         — same aggregate data size, now split across three relations)"
    );

    // -----------------------------------------------------------------
    // Serving layer v2: zero-deadline overhead floor
    // -----------------------------------------------------------------
    header("serve v2: zero-deadline per-query overhead");
    let small = syn_med_tree(scale.pick(500, 2_000), 3);
    let q = RankQuery::prfe(0.9).algorithm(Algorithm::ExactGf);
    let reps = scale.pick(50, 200);
    let (_, t_direct) = timed(|| {
        for _ in 0..reps {
            q.run(&small).expect("direct");
        }
    });
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::ZERO)
            .cache_enabled(false),
    );
    let rel = server.register("small", small.clone());
    let (_, t_served) = timed(|| {
        for _ in 0..reps {
            server
                .submit(rel, q.clone())
                .expect("server is up")
                .recv()
                .expect("query succeeds");
        }
    });
    server.shutdown();
    let overhead_us = (t_served - t_direct) / reps as f64 * 1e6;
    println!(
        "direct {} s, served {} s over {reps} queries: overhead {:.1} us/query",
        fmt(t_direct / reps as f64),
        fmt(t_served / reps as f64),
        overhead_us
    );
    println!("(acceptance: below the PR 5 floor of ~21 us/query)");

    // -----------------------------------------------------------------
    // Result cache: repeated queries, and what a mutation costs
    // -----------------------------------------------------------------
    header("serve: result cache on repeated queries");
    println!("repeated PRF^e(0.9, exact GF) on Syn-MED n = {n}, zero deadline\n");
    let q = RankQuery::prfe(0.9).algorithm(Algorithm::ExactGf);
    let reps = scale.pick(20, 50);

    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::ZERO)
            .cache_enabled(false),
    );
    let rel = server.register("syn-med", tree.clone());
    let (_, t_eval) = timed(|| {
        for _ in 0..reps {
            server
                .submit(rel, q.clone())
                .expect("server is up")
                .recv()
                .expect("query succeeds");
        }
    });
    server.shutdown();

    let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
    let rel = server.register("syn-med", tree.clone());
    server
        .submit(rel, q.clone())
        .expect("server is up")
        .recv()
        .expect("warm-up succeeds");
    let (_, t_hit) = timed(|| {
        for _ in 0..reps {
            let r = server
                .submit(rel, q.clone())
                .expect("server is up")
                .recv()
                .expect("query succeeds");
            assert!(r.report.serve.expect("provenance").served_from_cache);
        }
    });
    let hits = server.metrics().cache_hits;
    server.shutdown();
    println!(
        "evaluated (cache off) {} s/query; cached repeat {} s/query: {:.0}x faster \
         ({hits} hits counted)",
        fmt(t_eval / reps as f64),
        fmt(t_hit / reps as f64),
        t_eval / t_hit,
    );
    println!("(acceptance: the cached repeat must be >= 10x faster)\n");

    // What a mutation costs the cache: each write invalidates, the next
    // query pays a full walk, the one after that hits again.
    let live = std::sync::Arc::new(prf_serve::LiveRelation::new(
        prf_pdb::IndependentDb::from_pairs((0..n).map(|i| {
            (
                1000.0 + i as f64,
                0.05 + 0.9 * ((i * 7919) % 997) as f64 / 997.0,
            )
        }))
        .expect("valid pairs"),
    ));
    let server = RankServer::new(ServeConfig::new().max_delay(Duration::ZERO));
    let rel = server.register_live("live", std::sync::Arc::clone(&live));
    server
        .submit(rel, q.clone())
        .expect("server is up")
        .recv()
        .expect("warm-up succeeds");
    let rounds = scale.pick(5, 10);
    let (_, t_churn) = timed(|| {
        for i in 0..rounds {
            server
                .apply(
                    rel,
                    prf_serve::Mutation::Reweight(prf_serve::TupleId((i % n) as u32), 0.5),
                )
                .expect("server is up")
                .recv()
                .expect("mutation applies");
            let first = server
                .submit(rel, q.clone())
                .expect("server is up")
                .recv()
                .expect("query succeeds");
            assert!(!first.report.serve.expect("provenance").served_from_cache);
            let repeat = server
                .submit(rel, q.clone())
                .expect("server is up")
                .recv()
                .expect("query succeeds");
            assert!(repeat.report.serve.expect("provenance").served_from_cache);
        }
    });
    let m = server.metrics();
    server.shutdown();
    println!(
        "mutate-query-repeat x{rounds} on a live relation (n = {n}): {} s/round; \
         invalidations {}, hits {}, misses {}",
        fmt(t_churn / rounds as f64),
        m.cache_invalidations,
        m.cache_hits,
        m.cache_misses,
    );
    println!("(every mutation invalidates; the first post-mutation query re-evaluates)");
}
