//! The `serve` scenario: replays a mixed-semantics query trace through the
//! deadline-batched [`RankServer`] and compares end-to-end throughput with
//! dispatching the same trace as individual queries — the serving-workload
//! experiment the paper's amortization argument (one generating-function
//! walk answering every PRF-family query) predicts and PR 4's batch layer
//! enables. Reports per-client-count wall time, speedup, queue-wait
//! distribution and the flush-trigger mix.

use std::thread;
use std::time::Duration;

use prf_core::query::{Algorithm, FlushTrigger, RankQuery};
use prf_core::weights::TabulatedWeight;
use prf_datasets::syn_med_tree;
use prf_serve::{RankServer, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{fmt, header, timed, Scale, SEED};

/// A seeded mixed-semantics trace: the six shared-walk shapes in random
/// order, as a serving workload would interleave them.
fn trace(len: usize, seed: u64) -> Vec<RankQuery> {
    let omega: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..6) {
            0 => RankQuery::pt(100),
            1 => RankQuery::pt(25 * rng.gen_range(1usize..=4)),
            2 => RankQuery::prf(TabulatedWeight::from_real(&omega)),
            3 => RankQuery::prfe(0.95).algorithm(Algorithm::ExactGf),
            4 => RankQuery::prfe(rng.gen_range(0.5..0.99)).algorithm(Algorithm::ExactGf),
            _ => RankQuery::erank(),
        })
        .collect()
}

/// Replays the trace from `clients` threads; returns (wall seconds,
/// queue-wait seconds per query, queries answered per flush trigger).
fn replay(
    tree: &prf_pdb::AndXorTree,
    queries: &[RankQuery],
    clients: usize,
) -> (f64, Vec<f64>, [usize; 3]) {
    let server = RankServer::new(
        ServeConfig::new()
            .max_delay(Duration::from_millis(2))
            .max_batch(32),
    );
    let rel = server.register("syn-med", tree.clone());
    let (waits, wall) = timed(|| {
        thread::scope(|s| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    s.spawn(move || {
                        let mut waits = Vec::new();
                        for (i, q) in queries.iter().enumerate() {
                            if i % clients != c {
                                continue;
                            }
                            let result = server
                                .submit(rel, q.clone())
                                .expect("server is up")
                                .recv()
                                .expect("query succeeds");
                            let serve = result.report.serve.expect("provenance");
                            waits.push((serve.queue_seconds, serve.trigger, serve.flush_size));
                        }
                        waits
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("client thread"))
                .collect::<Vec<_>>()
        })
    });
    server.shutdown();

    let mut triggers = [0usize; 3];
    let mut queue_waits = Vec::with_capacity(waits.len());
    for (wait, trigger, _flush_size) in waits {
        queue_waits.push(wait);
        let slot = match trigger {
            FlushTrigger::Deadline => 0,
            FlushTrigger::SizeLimit => 1,
            FlushTrigger::Shutdown => 2,
        };
        triggers[slot] += 1;
    }
    (wall, queue_waits, triggers)
}

/// Runs the scenario.
pub fn run(scale: Scale) {
    header("serve: deadline-batched RankServer vs single dispatch");
    let n = scale.pick(2_000, 10_000);
    let len = scale.pick(24, 48);
    println!("Syn-MED n = {n}, mixed-semantics trace of {len} queries");
    println!("(deadline 2 ms, max batch 32, serial walks)\n");

    let tree = syn_med_tree(n, 3);
    let queries = trace(len, SEED);

    let (_, t_single) = timed(|| {
        for q in &queries {
            q.run(&tree).expect("single query");
        }
    });
    println!(
        "single dispatch      {:>9} s   ({:.1} q/s)",
        fmt(t_single),
        len as f64 / t_single
    );

    for clients in [1usize, 4, 16] {
        let (wall, mut waits, triggers) = replay(&tree, &queries, clients);
        waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let p95 = waits[((waits.len() as f64 * 0.95).ceil() as usize).clamp(1, waits.len()) - 1];
        println!(
            "served, {clients:>2} clients   {:>9} s   ({:.1} q/s, {:.2}x single) \
             queue wait mean {} s / p95 {} s; triggers: deadline {} size {} shutdown {}",
            fmt(wall),
            len as f64 / wall,
            t_single / wall,
            fmt(mean),
            fmt(p95),
            triggers[0],
            triggers[1],
            triggers[2],
        );
    }
    println!(
        "\n(the 16-client row is the acceptance measurement: batched serving \
         must reach >= 1.5x single-dispatch throughput)"
    );
}
