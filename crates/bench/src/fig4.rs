//! Figure 4 — the effect of the approximation refinements on the step
//! function (N = 1000, L = 20, a = 2).
//!
//! Prints the reconstruction `ω̃(x)` of each pipeline stage over
//! `x ∈ [0, 2500]`, plus per-stage error summaries (bias inside the
//! support, mass beyond it, RMS) — the quantities one reads off the paper's
//! plot.

use prf_approx::{approximate_weights, DftApproxConfig, ExpMixture};

use crate::{fmt, header, Scale};

/// The five pipeline stages (the paper's four + our LS-refined variant).
pub fn stages(l: usize) -> Vec<(&'static str, DftApproxConfig)> {
    vec![
        ("DFT", DftApproxConfig::dft_only(l)),
        ("DFT+DF", DftApproxConfig::dft_df(l)),
        ("DFT+DF+IS", DftApproxConfig::dft_df_is(l)),
        ("DFT+DF+IS+ES", DftApproxConfig::full(l)),
        ("refined(LS)", DftApproxConfig::refined(l)),
    ]
}

/// Error summary of a mixture against the step function with support `n`.
pub fn summarize(mix: &ExpMixture, n: usize) -> (f64, f64, f64) {
    let step = |i: usize| if i < n { 1.0 } else { 0.0 };
    let mut bias = 0.0;
    for i in 0..n {
        bias += (mix.weight_at(i).re - 1.0).abs();
    }
    bias /= n as f64;
    let mut beyond = 0.0f64;
    // Sample far beyond the domain to expose periodic images.
    let mut count = 0;
    let mut i = 2 * n;
    while i < 6 * n {
        beyond += mix.weight_at(i).re.abs();
        count += 1;
        i += 13;
    }
    beyond /= count as f64;
    let rms = mix.rms_error(&step, 5 * n / 2);
    (bias, beyond, rms)
}

/// Runs the Figure 4 experiment.
pub fn run(_scale: Scale) {
    header("Figure 4: refinement stages on the step function (N=1000, L=20)");
    let n = 1000;
    let l = 20;
    let step = move |i: usize| if i < n { 1.0 } else { 0.0 };

    let mixes: Vec<(&'static str, ExpMixture)> = stages(l)
        .into_iter()
        .map(|(name, cfg)| (name, approximate_weights(&step, n, &cfg)))
        .collect();

    // Curves, sampled every 100 points.
    print!("{:>6}{:>8}", "x", "w(x)");
    for (name, _) in &mixes {
        print!("{name:>14}");
    }
    println!();
    for x in (0..=2500).step_by(100) {
        print!("{x:>6}{:>8}", fmt(step(x)));
        for (_, mix) in &mixes {
            print!("{:>14}", fmt(mix.weight_at(x).re));
        }
        println!();
    }

    println!(
        "\n{:>14}{:>14}{:>16}{:>10}",
        "stage", "support bias", "beyond-domain", "rms"
    );
    for (name, mix) in &mixes {
        let (bias, beyond, rms) = summarize(mix, n);
        println!(
            "{name:>14}{:>14}{:>16}{:>10}",
            fmt(bias),
            fmt(beyond),
            fmt(rms)
        );
    }
    println!(
        "\nPaper's reading: raw DFT is periodic (large beyond-domain error); DF \
         kills the images but biases the support; IS removes the bias; ES fixes \
         the x=0 boundary. The LS-refined variant is the configuration the \
         ranking experiments use."
    );
}
