//! Figure 5 — approximating three weight-function shapes with increasing
//! numbers of exponentials.
//!
//! Panels: (i) the step function (`N = 1000` — the hardest case), (ii) the
//! piecewise-linear `ω(i) = 1000 − i` (clamped at 0), (iii) an arbitrary
//! smooth function. Reports the reconstruction RMS per term count; smooth
//! functions need far fewer terms, exactly as the paper observes.

use prf_approx::{approximate_weights, DftApproxConfig};

use crate::{fmt, header, Scale};

/// The three panels of Figure 5 as `(name, support, ω)` triples.
#[allow(clippy::type_complexity)]
pub fn panels(n: usize) -> Vec<(&'static str, usize, Box<dyn Fn(usize) -> f64>)> {
    let nf = n as f64;
    vec![
        (
            "step",
            n,
            Box::new(move |i: usize| if i < n { 1.0 } else { 0.0 }) as Box<dyn Fn(usize) -> f64>,
        ),
        (
            "linear (1000-i)",
            n,
            Box::new(move |i: usize| if i < n { (nf - i as f64) / nf } else { 0.0 }),
        ),
        (
            "smooth",
            n,
            // An "arbitrarily generated" smooth decaying mixture of cosines.
            Box::new(move |i: usize| {
                if i >= n {
                    return 0.0;
                }
                let t = i as f64 / nf;
                let envelope = 0.5 * (1.0 + (std::f64::consts::PI * t).cos());
                let wobble = 1.0 + 0.15 * (5.0 * std::f64::consts::PI * t).sin();
                (envelope * wobble).max(0.0)
            }),
        ),
    ]
}

/// Runs the Figure 5 experiment.
pub fn run(_scale: Scale) {
    header("Figure 5: approximation quality vs number of exponentials");
    let n = 1000;
    let terms = [5usize, 10, 20, 30, 50, 100];

    println!(
        "{:>18} | {}",
        "function",
        terms
            .iter()
            .map(|l| format!("L={l:<4}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for (name, support, omega) in panels(n) {
        let mut cells = Vec::new();
        for &l in &terms {
            let mix = approximate_weights(omega.as_ref(), support, &DftApproxConfig::refined(l));
            cells.push(format!("{:<6}", fmt(mix.rms_error(omega.as_ref(), 2 * n))));
        }
        println!("{name:>18} | {}", cells.join(" "));
    }
    println!(
        "\nShape check (paper): the step function needs the most terms; the \
         linear and smooth functions are already excellent at L = 10-20."
    );

    // Sampled reconstructions at L = 20 for visual comparison.
    println!("\nReconstruction samples at L = 20:");
    print!("{:>6}", "x");
    let pans = panels(n);
    for (name, _, _) in &pans {
        print!("{:>22}", format!("{name}: w / w~"));
    }
    println!();
    let mixes: Vec<_> = pans
        .iter()
        .map(|(_, support, omega)| {
            approximate_weights(omega.as_ref(), *support, &DftApproxConfig::refined(20))
        })
        .collect();
    for x in (0..=1500).step_by(125) {
        print!("{x:>6}");
        for ((_, _, omega), mix) in pans.iter().zip(&mixes) {
            print!(
                "{:>22}",
                format!("{} / {}", fmt(omega(x)), fmt(mix.weight_at(x).re))
            );
        }
        println!();
    }
}
