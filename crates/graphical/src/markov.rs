//! Markov chains (Section 9.3) — the treewidth-1 special case.
//!
//! A finite Markov chain `Y₁ → Y₂ → … → Y_m` over binary tuple-existence
//! indicators. The partial-sum recursion maintains the joint
//! `Pr(Y_{j+1}, P_j)` where `P_j = Σ_{l ≤ j} δ_l·Y_l`, using the
//! conditional-independence of `P_{j−1}` and `Y_{j+1}` given `Y_j` — `O(m)`
//! states each carrying an `O(m)` distribution, i.e. `O(m²)` per query and
//! `O(m³)` to rank a whole chain-correlated relation.

#![allow(clippy::needless_range_loop)] // binary-state loops read clearer indexed

use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{PossibleWorld, TupleId, WorldEnumeration};

use crate::factor::{Factor, VarId};
use crate::network::MarkovNetwork;

/// A binary Markov chain given by the initial distribution of `Y₀` and the
/// per-step transition matrices.
#[derive(Clone, Debug)]
pub struct MarkovChain {
    /// `[Pr(Y₀ = 0), Pr(Y₀ = 1)]`.
    initial: [f64; 2],
    /// `transitions[j][y][y']` = `Pr(Y_{j+1} = y' | Y_j = y)`.
    transitions: Vec<[[f64; 2]; 2]>,
}

impl MarkovChain {
    /// Creates a chain, validating stochasticity.
    ///
    /// # Panics
    /// Panics if any distribution fails to sum to 1 (±1e-9) or has negative
    /// entries.
    pub fn new(initial: [f64; 2], transitions: Vec<[[f64; 2]; 2]>) -> Self {
        assert!((initial[0] + initial[1] - 1.0).abs() < 1e-9);
        assert!(initial.iter().all(|&p| p >= 0.0));
        for (j, t) in transitions.iter().enumerate() {
            for (y, row) in t.iter().enumerate() {
                assert!(
                    (row[0] + row[1] - 1.0).abs() < 1e-9,
                    "transition {j} from state {y} not stochastic"
                );
                assert!(row.iter().all(|&p| p >= 0.0));
            }
        }
        MarkovChain {
            initial,
            transitions,
        }
    }

    /// Number of variables in the chain.
    pub fn len(&self) -> usize {
        self.transitions.len() + 1
    }

    /// `true` for a single-variable chain with no transitions.
    pub fn is_empty(&self) -> bool {
        false // a chain always has at least the initial variable
    }

    /// Marginal `Pr(Y_j = 1)` for every position.
    pub fn marginals(&self) -> Vec<f64> {
        let mut dist = self.initial;
        let mut out = vec![dist[1]];
        for t in &self.transitions {
            dist = [
                dist[0] * t[0][0] + dist[1] * t[1][0],
                dist[0] * t[0][1] + dist[1] * t[1][1],
            ];
            out.push(dist[1]);
        }
        out
    }

    /// Probability of a full assignment (bit `j` of `mask` = `Y_j`).
    pub fn assignment_probability(&self, mask: u64) -> f64 {
        let mut p = self.initial[(mask & 1) as usize];
        let mut prev = (mask & 1) as usize;
        for (j, t) in self.transitions.iter().enumerate() {
            let cur = (mask >> (j + 1) & 1) as usize;
            p *= t[prev][cur];
            prev = cur;
        }
        p
    }

    /// Enumerates all possible worlds (present-tuple sets). Test oracle.
    ///
    /// # Panics
    /// Panics if the chain is longer than 24 variables.
    pub fn enumerate_worlds(&self) -> WorldEnumeration {
        let m = self.len();
        assert!(m <= 24, "enumeration oracle limited to 24 variables");
        let mut worlds = Vec::with_capacity(1 << m);
        for mask in 0..1u64 << m {
            let p = self.assignment_probability(mask);
            if p > 0.0 {
                let present: Vec<TupleId> = (0..m)
                    .filter(|&j| mask >> j & 1 == 1)
                    .map(|j| TupleId(j as u32))
                    .collect();
                worlds.push((PossibleWorld::new(present), p));
            }
        }
        WorldEnumeration { worlds }.normalized()
    }

    /// Converts to a general Markov network (pairwise factors), for
    /// cross-checking against the junction-tree algorithms.
    pub fn to_network(&self) -> MarkovNetwork {
        let mut factors = vec![Factor::new(
            vec![VarId(0)],
            vec![self.initial[0], self.initial[1]],
        )];
        for (j, t) in self.transitions.iter().enumerate() {
            factors.push(Factor::new(
                vec![VarId(j as u32), VarId((j + 1) as u32)],
                // bit 0 ↔ Y_j, bit 1 ↔ Y_{j+1}.
                vec![t[0][0], t[1][0], t[0][1], t[1][1]],
            ));
        }
        MarkovNetwork::new(self.len(), factors)
    }

    /// `Pr(Σ_j δ_j·Y_j = a ∧ Y_target = 1)` for all `a`, by the forward
    /// recursion of Section 9.3 with `Y_target` clamped to 1.
    ///
    /// `deltas[j]` flags whether `Y_j` contributes to the sum. `O(m²)`.
    pub fn clamped_sum_distribution(&self, deltas: &[bool], target: usize) -> Vec<f64> {
        let m = self.len();
        assert_eq!(deltas.len(), m);
        assert!(target < m);
        // state[y] = distribution over partial sums, jointly with Y_j = y
        // and the clamping event.
        let mut state = [vec![0.0; m + 1], vec![0.0; m + 1]];
        for y in 0..2 {
            if target == 0 && y == 0 {
                continue; // clamped to 1
            }
            let s = if deltas[0] && y == 1 { 1 } else { 0 };
            state[y][s] += self.initial[y];
        }
        for (j, t) in self.transitions.iter().enumerate() {
            let pos = j + 1;
            let mut next = [vec![0.0; m + 1], vec![0.0; m + 1]];
            for prev_y in 0..2 {
                for (a, &p) in state[prev_y].iter().enumerate() {
                    if p == 0.0 {
                        continue;
                    }
                    for y in 0..2 {
                        if pos == target && y == 0 {
                            continue; // clamp
                        }
                        let a2 = a + usize::from(deltas[pos] && y == 1);
                        next[y][a2] += p * t[prev_y][y];
                    }
                }
            }
            state = next;
        }
        let mut out = vec![0.0; m + 1];
        for y in 0..2 {
            for (a, &p) in state[y].iter().enumerate() {
                out[a] += p;
            }
        }
        out
    }

    /// Positional probabilities `Pr(r(t) = j)` for every tuple of a
    /// chain-correlated relation (`scores[j]` is the score of the tuple
    /// whose indicator is `Y_j`). `O(m³)` total.
    pub fn rank_distributions(&self, scores: &[f64]) -> Vec<Vec<f64>> {
        let m = self.len();
        assert_eq!(scores.len(), m);
        let order = sort_indices_by_score_desc(scores);
        let mut pos = vec![0usize; m];
        for (i, &t) in order.iter().enumerate() {
            pos[t] = i;
        }
        let mut out = vec![vec![0.0; m]; m];
        for target in 0..m {
            // δ_l = 1 iff tuple l ranks above the target in the total order.
            let deltas: Vec<bool> = (0..m).map(|l| pos[l] < pos[target]).collect();
            let sums = self.clamped_sum_distribution(&deltas, target);
            for (a, &p) in sums.iter().enumerate() {
                if a < m {
                    out[target][a] += p; // rank = (#above) + 1 ⇒ index a
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> MarkovChain {
        MarkovChain::new(
            [0.4, 0.6],
            vec![
                [[0.7, 0.3], [0.2, 0.8]],
                [[0.5, 0.5], [0.9, 0.1]],
                [[0.25, 0.75], [0.6, 0.4]],
            ],
        )
    }

    #[test]
    fn marginals_match_enumeration() {
        let c = chain();
        let worlds = c.enumerate_worlds();
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        let m = c.marginals();
        for j in 0..c.len() {
            let brute = worlds.marginal(TupleId(j as u32));
            assert!((m[j] - brute).abs() < 1e-12, "Y{j}: {} vs {brute}", m[j]);
        }
    }

    #[test]
    fn rank_distributions_match_enumeration() {
        let c = chain();
        let scores = [10.0, 40.0, 20.0, 30.0];
        let worlds = c.enumerate_worlds();
        let got = c.rank_distributions(&scores);
        for t in 0..c.len() {
            let brute = worlds.rank_distribution(TupleId(t as u32), c.len(), &scores);
            for r in 0..c.len() {
                assert!(
                    (got[t][r] - brute[r]).abs() < 1e-12,
                    "t{t} rank {}: {} vs {}",
                    r + 1,
                    got[t][r],
                    brute[r]
                );
            }
        }
    }

    #[test]
    fn clamped_sum_accounts_for_evidence() {
        let c = chain();
        // Σ over all four variables (all deltas on except the clamped one).
        let deltas = [true, false, true, true];
        let target = 1;
        let dist = c.clamped_sum_distribution(&deltas, target);
        // Total mass = Pr(Y1 = 1).
        let total: f64 = dist.iter().sum();
        assert!((total - c.marginals()[1]).abs() < 1e-12);
    }

    #[test]
    fn network_conversion_agrees() {
        let c = chain();
        let net = c.to_network();
        let joint = net.enumerate_joint();
        for mask in 0..1u64 << c.len() {
            let direct = c.assignment_probability(mask);
            assert!((joint[mask as usize] - direct).abs() < 1e-12, "mask {mask}");
        }
    }

    #[test]
    fn deterministic_transitions() {
        // A chain that copies: Y1 = Y0 with certainty.
        let c = MarkovChain::new([0.3, 0.7], vec![[[1.0, 0.0], [0.0, 1.0]]]);
        let worlds = c.enumerate_worlds();
        assert_eq!(worlds.len(), 2);
        let got = c.rank_distributions(&[5.0, 9.0]);
        // Both present together (p = .7): tuple 1 (score 9) rank 1, tuple 0
        // rank 2.
        assert!((got[1][0] - 0.7).abs() < 1e-12);
        assert!((got[0][1] - 0.7).abs() < 1e-12);
        assert!((got[0][0] - 0.0).abs() < 1e-12);
    }
}
