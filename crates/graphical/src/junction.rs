//! Junction trees with Hugin calibration and conditioning (Section 9.1–9.2).
//!
//! A junction tree stores one potential per clique and one per separator.
//! After [`JunctionTree::calibrate`], every clique potential equals the true
//! marginal `Pr(C)` and every separator potential `Pr(S)`, so the joint
//! factors as `Pr(X) = Π_C Pr(C) / Π_S Pr(S)`.
//!
//! [`JunctionTree::conditioned`] implements the conditioning step of
//! Section 9.2: slice `X = v` out of every potential, keep the tree shape
//! (separators may become empty — components are then genuinely independent,
//! which is exactly what the partial-sum DP needs; no forest surgery), and
//! recalibrate.

use crate::factor::{Factor, VarId};

/// One edge of the junction tree, with its separator potential.
#[derive(Clone, Debug)]
struct Edge {
    a: usize,
    b: usize,
    separator: Factor,
}

/// A junction tree over binary variables.
#[derive(Clone, Debug)]
pub struct JunctionTree {
    n_vars: usize,
    cliques: Vec<Factor>,
    edges: Vec<Edge>,
    /// Adjacency: per clique, `(neighbor clique, edge index)`.
    adjacency: Vec<Vec<(usize, usize)>>,
    /// Total mass Z of the (unnormalised) model, set by calibration.
    z: f64,
}

impl JunctionTree {
    /// Assembles a junction tree from clique potentials and edges. Separator
    /// scopes are the pairwise clique intersections. The caller must
    /// guarantee the running intersection property (as the construction in
    /// [`crate::network::MarkovNetwork::junction_tree`] does).
    pub fn from_parts(n_vars: usize, cliques: Vec<Factor>, edge_list: Vec<(usize, usize)>) -> Self {
        let mut adjacency = vec![Vec::new(); cliques.len()];
        let mut edges = Vec::with_capacity(edge_list.len());
        for (idx, (a, b)) in edge_list.into_iter().enumerate() {
            let sep_vars: Vec<VarId> = cliques[a]
                .vars()
                .iter()
                .copied()
                .filter(|v| cliques[b].vars().contains(v))
                .collect();
            let separator = Factor::new(sep_vars.clone(), vec![1.0; 1 << sep_vars.len()]);
            adjacency[a].push((b, idx));
            adjacency[b].push((a, idx));
            edges.push(Edge { a, b, separator });
        }
        JunctionTree {
            n_vars,
            cliques,
            edges,
            adjacency,
            z: f64::NAN,
        }
    }

    /// Number of variables in the underlying model.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of cliques.
    pub fn n_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// The clique potentials (calibrated = marginals after
    /// [`JunctionTree::calibrate`]).
    pub fn clique(&self, i: usize) -> &Factor {
        &self.cliques[i]
    }

    /// Treewidth: max clique size − 1.
    pub fn treewidth(&self) -> usize {
        self.cliques
            .iter()
            .map(|c| c.arity())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// The normalisation constant `Z` (1 for an already-normalised model).
    ///
    /// # Panics
    /// Panics if the tree has not been calibrated.
    pub fn normalization(&self) -> f64 {
        assert!(!self.z.is_nan(), "call calibrate() first");
        self.z
    }

    /// Neighbours of a clique: `(clique, edge index)` pairs.
    pub fn neighbors(&self, clique: usize) -> &[(usize, usize)] {
        &self.adjacency[clique]
    }

    /// The separator potential of an edge.
    pub fn separator(&self, edge: usize) -> &Factor {
        &self.edges[edge].separator
    }

    /// Hugin message passing: one collect pass into clique 0 and one
    /// distribute pass out of it, followed by global normalisation. After
    /// this, clique and separator potentials are exact (normalised)
    /// marginals and [`JunctionTree::normalization`] returns the model's
    /// previous total mass.
    pub fn calibrate(&mut self) {
        let n = self.cliques.len();
        if n == 0 {
            self.z = 1.0;
            return;
        }
        // Iterative DFS orders (avoid recursion for deep trees).
        let order = self.dfs_order(0);

        // Collect: children → parents, deepest first.
        for &(clique, parent_edge) in order.iter().rev() {
            let Some(pe) = parent_edge else { continue };
            let parent = self.edge_other(pe, clique);
            self.pass_message(clique, parent, pe);
        }
        // Distribute: parents → children.
        for &(clique, parent_edge) in &order {
            let Some(pe) = parent_edge else { continue };
            let parent = self.edge_other(pe, clique);
            self.pass_message(parent, clique, pe);
        }

        // Normalise.
        let z = self.cliques[0].total();
        assert!(z > 0.0, "model has zero total mass");
        for c in &mut self.cliques {
            c.scale(1.0 / z);
        }
        for e in &mut self.edges {
            e.separator.scale(1.0 / z);
        }
        self.z = z;
    }

    /// DFS preorder from `root`: `(clique, edge to parent)`.
    fn dfs_order(&self, root: usize) -> Vec<(usize, Option<usize>)> {
        let mut order = Vec::with_capacity(self.cliques.len());
        let mut visited = vec![false; self.cliques.len()];
        let mut stack = vec![(root, None::<usize>)];
        while let Some((c, pe)) = stack.pop() {
            if visited[c] {
                continue;
            }
            visited[c] = true;
            order.push((c, pe));
            for &(nb, edge) in &self.adjacency[c] {
                if !visited[nb] {
                    stack.push((nb, Some(edge)));
                }
            }
        }
        assert!(
            order.len() == self.cliques.len(),
            "junction tree must be connected"
        );
        order
    }

    fn edge_other(&self, edge: usize, clique: usize) -> usize {
        let e = &self.edges[edge];
        if e.a == clique {
            e.b
        } else {
            e.a
        }
    }

    /// Passes a Hugin message from `src` to `dst` across `edge`.
    fn pass_message(&mut self, src: usize, dst: usize, edge: usize) {
        let sep_vars: Vec<VarId> = self.edges[edge].separator.vars().to_vec();
        let new_sep = self.cliques[src].marginalize_onto(&sep_vars);
        let mut update = new_sep.clone();
        update.divide_subset(&self.edges[edge].separator);
        self.cliques[dst].multiply_subset(&update);
        self.edges[edge].separator = new_sep;
    }

    /// The marginal `Pr(X_v = 1)` (requires calibration).
    pub fn marginal(&self, v: VarId) -> f64 {
        assert!(!self.z.is_nan(), "call calibrate() first");
        let home = self
            .cliques
            .iter()
            .position(|c| c.position_of(v).is_some())
            .expect("variable must appear in some clique");
        let m = self.cliques[home].marginal(v);
        m[1] / (m[0] + m[1])
    }

    /// Conditions on `X_v = value` (Section 9.2): slices the variable out of
    /// every clique **and separator** (the joint factors as
    /// `Π ψ_C / Π φ_S`, so both must be restricted to preserve the measure),
    /// recalibrates, and returns the new tree together with the evidence
    /// probability `Pr(X_v = value)`.
    ///
    /// Separators that contained only `v` become empty — their two sides are
    /// conditionally independent, which downstream consumers (the
    /// partial-sum DP) handle without splitting the tree.
    pub fn conditioned(&self, v: VarId, value: bool) -> (JunctionTree, f64) {
        assert!(!self.z.is_nan(), "call calibrate() first");
        let mut jt = JunctionTree {
            n_vars: self.n_vars,
            cliques: self.cliques.iter().map(|c| c.condition(v, value)).collect(),
            edges: self
                .edges
                .iter()
                .map(|e| Edge {
                    a: e.a,
                    b: e.b,
                    separator: e.separator.condition(v, value),
                })
                .collect(),
            adjacency: self.adjacency.clone(),
            z: f64::NAN,
        };
        jt.calibrate();
        // The parent tree was normalised, so the sliced measure's total mass
        // is exactly Pr(X_v = value).
        let evidence = jt.normalization();
        (jt, evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// A 3-variable chain: X0 — X1 — X2 with attractive couplings.
    fn chain3() -> JunctionTree {
        let c01 = Factor::new(vec![v(0), v(1)], vec![0.4, 0.1, 0.1, 0.4]);
        let c12 = Factor::new(vec![v(1), v(2)], vec![0.8, 0.2, 0.2, 0.8]);
        let mut jt = JunctionTree::from_parts(3, vec![c01, c12], vec![(0, 1)]);
        jt.calibrate();
        jt
    }

    #[test]
    fn calibration_makes_cliques_consistent() {
        let jt = chain3();
        // Both cliques must agree on Pr(X1).
        let a = jt.clique(0).marginal(v(1));
        let b = jt.clique(1).marginal(v(1));
        assert!((a[0] - b[0]).abs() < 1e-12);
        assert!((a[1] - b[1]).abs() < 1e-12);
        // Cliques are normalised.
        assert!((jt.clique(0).total() - 1.0).abs() < 1e-12);
        assert!((jt.clique(1).total() - 1.0).abs() < 1e-12);
        assert!(jt.normalization() > 0.0);
    }

    #[test]
    fn marginals_match_hand_computation() {
        // Unnormalised measure: μ(x0,x1,x2) = c01(x0,x1)·c12(x1,x2).
        let jt = chain3();
        // By symmetry Pr(X1=1) = 0.5.
        assert!((jt.marginal(v(1)) - 0.5).abs() < 1e-12);
        // Pr(X0=1) = Σ μ with x0=1 / Z. μ sums: x0=1: c01(1,x1)·Σ_{x2}c12(x1,x2)
        // = 0.1·1.0 + 0.4·1.0 = 0.5; Z = 1.0·... compute: total μ = Σ_{x0,x1}
        // c01·Σ_{x2} c12(x1,·) = (0.4+0.1)·1 + (0.1+0.4)·1 = 1.0.
        assert!((jt.marginal(v(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conditioning_reweights() {
        let jt = chain3();
        let (cond, p1) = jt.conditioned(v(1), true);
        assert!((p1 - 0.5).abs() < 1e-12);
        // Given X1=1: Pr(X0=1) = 0.4/0.5 = 0.8, Pr(X2=1) = 0.8.
        assert!((cond.marginal(v(0)) - 0.8).abs() < 1e-12);
        assert!((cond.marginal(v(2)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn conditioning_on_separator_variable_empties_separator() {
        let jt = chain3();
        let (cond, _) = jt.conditioned(v(1), false);
        assert_eq!(cond.separator(0).arity(), 0);
        // The two sides are independent given X1=0:
        // Pr(X0=1 | X1=0) = 0.1/0.5 = 0.2.
        assert!((cond.marginal(v(0)) - 0.2).abs() < 1e-12);
        assert!((cond.marginal(v(2)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_clique_tree() {
        let c = Factor::new(vec![v(0), v(1)], vec![0.1, 0.2, 0.3, 0.4]);
        let mut jt = JunctionTree::from_parts(2, vec![c], vec![]);
        jt.calibrate();
        assert!((jt.marginal(v(0)) - 0.6).abs() < 1e-12);
        assert!((jt.normalization() - 1.0).abs() < 1e-12);
        assert_eq!(jt.treewidth(), 1);
    }
}
