//! Markov networks over binary tuple-existence variables, and junction-tree
//! construction (Section 9.1).
//!
//! A [`MarkovNetwork`] is a product of [`Factor`]s; its (unnormalised) joint
//! is `μ(x) = Π_f f(x)`. Junction trees are built the standard way: min-fill
//! elimination over the moral graph yields the cliques, and a maximum-weight
//! spanning tree over clique intersections satisfies the running
//! intersection property (Jensen & Jensen).

use std::collections::HashSet;

use crate::factor::{Factor, VarId};
use crate::junction::JunctionTree;

/// A Markov network: `n_vars` binary variables and a set of factors.
#[derive(Clone, Debug)]
pub struct MarkovNetwork {
    n_vars: usize,
    factors: Vec<Factor>,
}

impl MarkovNetwork {
    /// Creates a network; factor variables must lie in `0..n_vars`.
    pub fn new(n_vars: usize, factors: Vec<Factor>) -> Self {
        for f in &factors {
            for v in f.vars() {
                assert!(v.index() < n_vars, "factor variable out of range");
            }
        }
        MarkovNetwork { n_vars, factors }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The factors.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Unnormalised measure of a full assignment (bit `i` of `mask` is
    /// `X_i`).
    pub fn unnormalized_measure(&self, mask: u64) -> f64 {
        let mut acc = 1.0;
        for f in &self.factors {
            let mut sub = 0usize;
            for (bit, v) in f.vars().iter().enumerate() {
                if mask >> v.index() & 1 == 1 {
                    sub |= 1 << bit;
                }
            }
            acc *= f.at(sub);
        }
        acc
    }

    /// Brute-force joint distribution over all `2^n` assignments,
    /// normalised. Test oracle only.
    ///
    /// # Panics
    /// Panics if `n_vars > 24`.
    pub fn enumerate_joint(&self) -> Vec<f64> {
        assert!(self.n_vars <= 24, "enumeration oracle limited to 24 vars");
        let mut joint: Vec<f64> = (0..1u64 << self.n_vars)
            .map(|m| self.unnormalized_measure(m))
            .collect();
        let z: f64 = joint.iter().sum();
        assert!(z > 0.0, "network has zero total mass");
        for p in &mut joint {
            *p /= z;
        }
        joint
    }

    /// Builds a calibrated junction tree via min-fill elimination.
    pub fn junction_tree(&self) -> JunctionTree {
        // Moral/interaction graph: adjacency sets.
        let n = self.n_vars;
        let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for f in &self.factors {
            let vs = f.vars();
            for i in 0..vs.len() {
                for j in i + 1..vs.len() {
                    adj[vs[i].index()].insert(vs[j].index());
                    adj[vs[j].index()].insert(vs[i].index());
                }
            }
        }

        // Min-fill elimination producing elimination cliques.
        let mut eliminated = vec![false; n];
        let mut cliques: Vec<Vec<VarId>> = Vec::new();
        for _ in 0..n {
            // Choose the uneliminated variable with the fewest fill-in
            // edges (ties: smallest id, for determinism).
            let mut best: Option<(usize, usize)> = None; // (fill, var)
            for v in 0..n {
                if eliminated[v] {
                    continue;
                }
                let neigh: Vec<usize> =
                    adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
                let mut fill = 0usize;
                for i in 0..neigh.len() {
                    for j in i + 1..neigh.len() {
                        if !adj[neigh[i]].contains(&neigh[j]) {
                            fill += 1;
                        }
                    }
                }
                if best.is_none_or(|(bf, bv)| (fill, v) < (bf, bv)) {
                    best = Some((fill, v));
                }
            }
            let (_, v) = best.expect("variables remain");
            let neigh: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
            // Record the elimination clique {v} ∪ neighbours.
            let mut clique: Vec<VarId> = neigh.iter().map(|&u| VarId(u as u32)).collect();
            clique.push(VarId(v as u32));
            clique.sort_unstable();
            cliques.push(clique);
            // Connect the neighbours (fill-in).
            for i in 0..neigh.len() {
                for j in i + 1..neigh.len() {
                    adj[neigh[i]].insert(neigh[j]);
                    adj[neigh[j]].insert(neigh[i]);
                }
            }
            eliminated[v] = true;
        }

        // Drop non-maximal cliques.
        let mut maximal: Vec<Vec<VarId>> = Vec::new();
        'outer: for c in &cliques {
            for other in &cliques {
                if other.len() > c.len() && c.iter().all(|v| other.contains(v)) {
                    continue 'outer;
                }
            }
            if !maximal.contains(c) {
                maximal.push(c.clone());
            }
        }

        // Max-weight spanning tree over |intersection| (Prim).
        let nc = maximal.len();
        let mut in_tree = vec![false; nc];
        let mut edges: Vec<(usize, usize)> = Vec::new();
        in_tree[0] = true;
        for _ in 1..nc {
            let mut best: Option<(usize, usize, usize)> = None; // (weight, from, to)
            for (a, _) in maximal.iter().enumerate().filter(|&(a, _)| in_tree[a]) {
                for (b, _) in maximal.iter().enumerate().filter(|&(b, _)| !in_tree[b]) {
                    let w = maximal[a].iter().filter(|v| maximal[b].contains(v)).count();
                    if best.is_none_or(|(bw, _, _)| w > bw) {
                        best = Some((w, a, b));
                    }
                }
            }
            let (_, a, b) = best.expect("connected by construction");
            in_tree[b] = true;
            edges.push((a, b));
        }

        // Assign each factor to one clique containing its variables.
        let mut potentials: Vec<Factor> = maximal
            .iter()
            .map(|vars| Factor::new(vars.clone(), vec![1.0; 1 << vars.len()]))
            .collect();
        for f in &self.factors {
            let home = maximal
                .iter()
                .position(|c| f.vars().iter().all(|v| c.contains(v)))
                .expect("elimination cliques cover every factor");
            potentials[home].multiply_subset(f);
        }

        let mut jt = JunctionTree::from_parts(self.n_vars, potentials, edges);
        jt.calibrate();
        jt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// The 5-variable chain-with-branches model of Figure 12.
    pub(crate) fn figure12_network() -> MarkovNetwork {
        // Pairwise joints (already consistent/calibrated in the paper).
        MarkovNetwork::new(
            5,
            vec![
                // Pr(X5, X4): order (X4, X3...) — use (X4, X5).
                Factor::new(vec![v(4), v(3)], vec![0.3, 0.2, 0.2, 0.3]),
                // Pr(X4, X3) joint over (X3, X4).
                Factor::new(vec![v(3), v(2)], vec![0.1, 0.4, 0.3, 0.2]),
                // Pr(X3, X2) over (X2, X3) — conditionals Pr(X2|X3).
                Factor::new(
                    vec![v(2), v(1)],
                    // Pr(X2, X3)/Pr(X3): normalise inside the test instead;
                    // here Pr(X2, X3) as joint then divided by Pr(X3).
                    vec![0.1 / 0.4, 0.3 / 0.4, 0.5 / 0.6, 0.1 / 0.6],
                ),
                // Pr(X1, X3)/Pr(X3).
                Factor::new(
                    vec![v(2), v(0)],
                    vec![0.1 / 0.4, 0.3 / 0.4, 0.4 / 0.6, 0.2 / 0.6],
                ),
            ],
        )
    }

    #[test]
    fn measure_is_product_of_factors() {
        let net = figure12_network();
        // X = (X1..X5) all zero: 0.3·0.1·(0.1/0.4)·(0.1/0.4).
        let m = net.unnormalized_measure(0);
        assert!((m - 0.3 * 0.1 * (0.1 / 0.4) * (0.1 / 0.4)).abs() < 1e-12);
    }

    #[test]
    fn joint_normalises() {
        let net = figure12_network();
        let joint = net.enumerate_joint();
        assert!((joint.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn junction_tree_marginals_match_enumeration() {
        let net = figure12_network();
        let jt = net.junction_tree();
        let joint = net.enumerate_joint();
        for var in 0..5u32 {
            let brute: f64 = joint
                .iter()
                .enumerate()
                .filter(|(m, _)| m >> var & 1 == 1)
                .map(|(_, p)| p)
                .sum();
            let got = jt.marginal(VarId(var));
            assert!((got - brute).abs() < 1e-10, "X{var}: {got} vs {brute}");
        }
        // Figure 12's treewidth-1 model yields pairwise cliques.
        assert!(jt.treewidth() <= 1, "treewidth {}", jt.treewidth());
    }

    #[test]
    fn junction_tree_on_loopy_network() {
        // A 4-cycle (treewidth 2 after triangulation).
        let f = |a: u32, b: u32| Factor::new(vec![v(a), v(b)], vec![1.0, 0.4, 0.4, 1.2]);
        let net = MarkovNetwork::new(4, vec![f(0, 1), f(1, 2), f(2, 3), f(3, 0)]);
        let jt = net.junction_tree();
        let joint = net.enumerate_joint();
        for var in 0..4u32 {
            let brute: f64 = joint
                .iter()
                .enumerate()
                .filter(|(m, _)| m >> var & 1 == 1)
                .map(|(_, p)| p)
                .sum();
            let got = jt.marginal(VarId(var));
            assert!((got - brute).abs() < 1e-10, "X{var}: {got} vs {brute}");
        }
        assert_eq!(jt.treewidth(), 2);
    }
}
