//! Ranking under arbitrary correlations: graphical models and junction trees
//! (Section 9 of the paper).
//!
//! Probabilistic and/xor trees capture mutual exclusion and co-existence,
//! but Markov networks capture arbitrary correlations compactly. This crate
//! provides the full pipeline the paper describes:
//!
//! * [`factor`] — potentials over binary tuple-existence variables,
//! * [`network`] — Markov networks and junction-tree construction
//!   (min-fill elimination + maximum-weight spanning tree),
//! * [`junction`] — Hugin calibration and evidence conditioning,
//! * [`markov`] — the `O(n³)` Markov-chain specialisation (Section 9.3),
//! * [`rank`] — the bounded-treewidth partial-sum dynamic program
//!   (Section 9.4) computing `Pr(r(t) = j)` in `O(n⁴·2^tw)`, PRF
//!   evaluation on top of it, and the [`NetworkRelation`] adapter that
//!   plugs junction-tree-correlated relations into the unified
//!   [`prf_core::query::RankQuery`] engine.
//!
//! The and/xor-tree algorithms of `prf-core` are *not* subsumed by this
//! crate: an and/xor tree's moralised graph can have unbounded treewidth,
//! which is why the paper develops both.

#![deny(missing_docs)]

pub mod factor;
pub mod junction;
pub mod markov;
pub mod network;
pub mod rank;

pub use factor::{Factor, VarId};
pub use junction::JunctionTree;
pub use markov::MarkovChain;
pub use network::MarkovNetwork;
pub use rank::{
    prf_rank_junction, prf_rank_markov_chain, rank_distributions_junction,
    rank_distributions_network, sum_distribution, NetworkRelation,
};
