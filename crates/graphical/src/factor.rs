//! Factors over binary variables.
//!
//! A factor is a non-negative table over the joint assignments of a small
//! set of binary variables (the tuple-existence indicators `X_t` of
//! Section 9.1). Tables are dense, indexed by bitmask: bit `i` of the index
//! is the value of `vars[i]`.

/// A binary random variable — in ranking use, the existence indicator of the
/// tuple with the same index.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense potential over a set of binary variables.
#[derive(Clone, Debug, PartialEq)]
pub struct Factor {
    /// The variables, in table-index bit order (bit `i` ↔ `vars[i]`).
    vars: Vec<VarId>,
    /// `2^{vars.len()}` non-negative entries.
    table: Vec<f64>,
}

impl Factor {
    /// Creates a factor after validating dimensions and non-negativity.
    ///
    /// # Panics
    /// Panics if `table.len() != 2^vars.len()`, variables repeat, or any
    /// entry is negative/NaN.
    pub fn new(vars: Vec<VarId>, table: Vec<f64>) -> Self {
        assert_eq!(table.len(), 1 << vars.len(), "table size mismatch");
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "duplicate variables in factor");
        assert!(
            table.iter().all(|&v| v >= 0.0 && v.is_finite()),
            "factor entries must be finite and non-negative"
        );
        Factor { vars, table }
    }

    /// The constant factor `1` over no variables.
    pub fn unit() -> Self {
        Factor {
            vars: Vec::new(),
            table: vec![1.0],
        }
    }

    /// A single-variable factor `[Pr(v=0), Pr(v=1)]`.
    pub fn singleton(v: VarId, p0: f64, p1: f64) -> Self {
        Factor::new(vec![v], vec![p0, p1])
    }

    /// The factor's variables (bit order).
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The raw table.
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Position of a variable within this factor, if present.
    pub fn position_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Sum of all entries.
    pub fn total(&self) -> f64 {
        self.table.iter().sum()
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, c: f64) {
        for v in &mut self.table {
            *v *= c;
        }
    }

    /// The entry for a full assignment given as a bitmask over this factor's
    /// variable order.
    #[inline]
    pub fn at(&self, mask: usize) -> f64 {
        self.table[mask]
    }

    /// Multiplies `other` into `self`. `other`'s variables must be a subset
    /// of `self`'s.
    pub fn multiply_subset(&mut self, other: &Factor) {
        let positions: Vec<usize> = other
            .vars
            .iter()
            .map(|&v| self.position_of(v).expect("other.vars ⊆ self.vars"))
            .collect();
        for (mask, entry) in self.table.iter_mut().enumerate() {
            let mut sub = 0usize;
            for (bit, &pos) in positions.iter().enumerate() {
                if mask >> pos & 1 == 1 {
                    sub |= 1 << bit;
                }
            }
            *entry *= other.table[sub];
        }
    }

    /// Divides `self` by `other` (variables ⊆ `self`'s), with the Hugin
    /// convention `0/0 = 0`.
    pub fn divide_subset(&mut self, other: &Factor) {
        let positions: Vec<usize> = other
            .vars
            .iter()
            .map(|&v| self.position_of(v).expect("other.vars ⊆ self.vars"))
            .collect();
        for (mask, entry) in self.table.iter_mut().enumerate() {
            let mut sub = 0usize;
            for (bit, &pos) in positions.iter().enumerate() {
                if mask >> pos & 1 == 1 {
                    sub |= 1 << bit;
                }
            }
            let d = other.table[sub];
            if d == 0.0 {
                debug_assert!(
                    *entry == 0.0,
                    "x/0 with x ≠ 0 in factor division (inconsistent potentials)"
                );
                *entry = 0.0;
            } else {
                *entry /= d;
            }
        }
    }

    /// Marginalises onto a subset of this factor's variables.
    pub fn marginalize_onto(&self, keep: &[VarId]) -> Factor {
        let positions: Vec<usize> = keep
            .iter()
            .map(|&v| self.position_of(v).expect("keep ⊆ self.vars"))
            .collect();
        let mut out = Factor {
            vars: keep.to_vec(),
            table: vec![0.0; 1 << keep.len()],
        };
        for (mask, &entry) in self.table.iter().enumerate() {
            let mut sub = 0usize;
            for (bit, &pos) in positions.iter().enumerate() {
                if mask >> pos & 1 == 1 {
                    sub |= 1 << bit;
                }
            }
            out.table[sub] += entry;
        }
        out
    }

    /// Restricts a variable to a fixed value, removing it from the factor.
    /// Returns `self` unchanged if the variable is absent.
    pub fn condition(&self, v: VarId, value: bool) -> Factor {
        let Some(pos) = self.position_of(v) else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        vars.remove(pos);
        let mut table = vec![0.0; 1 << vars.len()];
        for (new_mask, slot) in table.iter_mut().enumerate() {
            // Re-insert the conditioned bit at `pos`.
            let low = new_mask & ((1 << pos) - 1);
            let high = (new_mask >> pos) << (pos + 1);
            let mask = low | high | ((value as usize) << pos);
            *slot = self.table[mask];
        }
        Factor { vars, table }
    }

    /// The marginal `[Pr(v=0), Pr(v=1)]` of one variable (unnormalised if
    /// the factor is unnormalised).
    pub fn marginal(&self, v: VarId) -> [f64; 2] {
        let m = self.marginalize_onto(&[v]);
        [m.table[0], m.table[1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn construction_validation() {
        let f = Factor::new(vec![v(0), v(1)], vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(f.arity(), 2);
        assert!((f.total() - 1.0).abs() < 1e-12);
        assert_eq!(f.at(0b01), 0.2); // v0=1, v1=0
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn wrong_table_size() {
        Factor::new(vec![v(0)], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn multiply_and_divide_roundtrip() {
        let mut f = Factor::new(vec![v(0), v(1)], vec![0.1, 0.2, 0.3, 0.4]);
        let g = Factor::singleton(v(1), 0.5, 2.0);
        let original = f.clone();
        f.multiply_subset(&g);
        assert!((f.at(0b00) - 0.05).abs() < 1e-12);
        assert!((f.at(0b10) - 0.6).abs() < 1e-12);
        f.divide_subset(&g);
        for m in 0..4 {
            assert!((f.at(m) - original.at(m)).abs() < 1e-12);
        }
    }

    #[test]
    fn marginalization() {
        let f = Factor::new(vec![v(0), v(1)], vec![0.1, 0.2, 0.3, 0.4]);
        let m0 = f.marginal(v(0));
        assert!((m0[0] - 0.4).abs() < 1e-12); // v0=0: 0.1+0.3
        assert!((m0[1] - 0.6).abs() < 1e-12);
        let onto_both = f.marginalize_onto(&[v(1), v(0)]);
        // Reordered variables: entry (v1=1, v0=0) = table[0b01 in new order].
        assert!((onto_both.at(0b01) - f.at(0b10)).abs() < 1e-12);
        let scalar = f.marginalize_onto(&[]);
        assert!((scalar.at(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditioning_slices() {
        let f = Factor::new(vec![v(0), v(1)], vec![0.1, 0.2, 0.3, 0.4]);
        let c1 = f.condition(v(0), true);
        assert_eq!(c1.vars(), &[v(1)]);
        assert!((c1.at(0) - 0.2).abs() < 1e-12);
        assert!((c1.at(1) - 0.4).abs() < 1e-12);
        let c0 = f.condition(v(1), false);
        assert!((c0.at(0) - 0.1).abs() < 1e-12);
        assert!((c0.at(1) - 0.2).abs() < 1e-12);
        // Conditioning an absent variable is the identity.
        let same = f.condition(v(7), true);
        assert_eq!(same, f);
    }

    #[test]
    fn condition_middle_variable_bit_surgery() {
        // Three variables; conditioning the middle one must splice bits
        // correctly.
        let table: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let f = Factor::new(vec![v(0), v(1), v(2)], table);
        let c = f.condition(v(1), true);
        assert_eq!(c.vars(), &[v(0), v(2)]);
        // (v0, v2) = (0,0) → original mask 0b010 = 2.
        assert_eq!(c.at(0b00), 2.0);
        // (v0, v2) = (1,1) → original mask 0b111 = 7.
        assert_eq!(c.at(0b11), 7.0);
    }

    #[test]
    fn zero_over_zero_is_zero() {
        let mut f = Factor::new(vec![v(0)], vec![0.0, 1.0]);
        let g = Factor::new(vec![v(0)], vec![0.0, 0.5]);
        f.divide_subset(&g);
        assert_eq!(f.at(0), 0.0);
        assert!((f.at(1) - 2.0).abs() < 1e-12);
    }
}
