//! Rank distributions under arbitrary correlations (Sections 9.2 & 9.4).
//!
//! Reduction (Section 9.2): `Pr(r(t) = j) = Pr(X_t = 1)·Pr(P = j−1 | X_t=1)`
//! where `P = Σ_l δ_l·X_l` counts the higher-scored present tuples. After
//! conditioning the junction tree on `X_t = 1`, the distribution of `P` is
//! computed by a dynamic program over the tree (Section 9.4):
//!
//! * each clique `C` with parent separator `S` recursively produces
//!   `Pr(S, P_S)` — the joint of the separator assignment and the partial
//!   sum over the flagged variables strictly below `S`;
//! * child messages combine by convolution, justified by conditional
//!   independence given the separator (`Pr(C, P₁) =
//!   Pr(C)·Pr(S₁, P₁)/Pr(S₁)`, Markov property);
//! * the variables of `C` not shared with the parent contribute their own
//!   indicator bits — each variable is counted exactly once because clique
//!   subtrees containing a variable are connected (running intersection).
//!
//! Overall `O(n⁴·2^tw)` to rank a relation, matching the paper; the
//! treewidth-1 Markov-chain specialisation in [`crate::markov`] runs in
//! `O(n³)`.

use prf_numeric::Complex;
use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{Tuple, TupleId};

use crate::factor::VarId;
use crate::junction::JunctionTree;
use crate::markov::MarkovChain;
use crate::network::MarkovNetwork;

/// `Pr(Σ_v δ_v·X_v = a)` for the distribution represented by a calibrated
/// junction tree. Returns a vector of length `(#flagged) + 1`.
pub fn sum_distribution(jt: &JunctionTree, deltas: &[bool]) -> Vec<f64> {
    let max_sum = deltas.iter().filter(|&&d| d).count();
    if jt.n_cliques() == 0 {
        let mut out = vec![0.0; max_sum + 1];
        out[0] = 1.0;
        return out;
    }
    let msg = clique_message(jt, deltas, 0, None, max_sum);
    // Root message: indexed by the empty separator (single entry).
    debug_assert_eq!(msg.len(), 1);
    let mut out = msg.into_iter().next().expect("root message");
    out.resize(max_sum + 1, 0.0);
    out
}

/// Recursive DP step: returns, for each assignment `s` of the separator
/// towards the parent, the joint `Pr(S = s, P_S = a)` as `out[s][a]`.
/// `parent_edge == None` denotes the root (empty separator).
fn clique_message(
    jt: &JunctionTree,
    deltas: &[bool],
    clique: usize,
    parent_edge: Option<usize>,
    max_sum: usize,
) -> Vec<Vec<f64>> {
    let pot = jt.clique(clique);
    let cvars = pot.vars();
    let size = 1usize << cvars.len();

    // acc[x][a] = Pr(C = x, partial sums from processed children = a).
    let mut acc: Vec<Vec<f64>> = (0..size).map(|x| vec![pot.at(x)]).collect();

    for &(child, edge) in jt.neighbors(clique) {
        if Some(edge) == parent_edge {
            continue;
        }
        let child_msg = clique_message(jt, deltas, child, Some(edge), max_sum);
        let sep = jt.separator(edge);
        // Positions of the separator's variables inside this clique.
        let sep_positions: Vec<usize> = sep
            .vars()
            .iter()
            .map(|&v| pot.position_of(v).expect("separator ⊆ clique"))
            .collect();
        for (x, dist) in acc.iter_mut().enumerate() {
            let mut s = 0usize;
            for (bit, &p) in sep_positions.iter().enumerate() {
                if x >> p & 1 == 1 {
                    s |= 1 << bit;
                }
            }
            let denom = sep.at(s);
            if denom == 0.0 {
                // Pr(C = x) ≤ Pr(S = s) = 0; the entry carries no mass.
                for v in dist.iter_mut() {
                    *v = 0.0;
                }
                continue;
            }
            *dist = convolve_capped(dist, &child_msg[s], max_sum);
            for v in dist.iter_mut() {
                *v /= denom;
            }
        }
    }

    // Contributions of this clique's own variables (those not shared with
    // the parent — each variable is folded in exactly once, at the highest
    // clique containing it).
    let parent_sep_vars: Vec<VarId> = match parent_edge {
        Some(e) => jt.separator(e).vars().to_vec(),
        None => Vec::new(),
    };
    let own_positions: Vec<usize> = cvars
        .iter()
        .enumerate()
        .filter(|(_, v)| deltas[v.index()] && !parent_sep_vars.contains(v))
        .map(|(p, _)| p)
        .collect();

    // Marginalise onto the parent separator while shifting by the own-bit
    // count.
    let sep_positions: Vec<usize> = parent_sep_vars
        .iter()
        .map(|&v| pot.position_of(v).expect("separator ⊆ clique"))
        .collect();
    let out_size = 1usize << sep_positions.len();
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); out_size];
    for (x, dist) in acc.into_iter().enumerate() {
        let shift: usize = own_positions.iter().filter(|&&p| x >> p & 1 == 1).count();
        let mut s = 0usize;
        for (bit, &p) in sep_positions.iter().enumerate() {
            if x >> p & 1 == 1 {
                s |= 1 << bit;
            }
        }
        let slot = &mut out[s];
        if slot.len() < (dist.len() + shift).min(max_sum + 1) {
            slot.resize((dist.len() + shift).min(max_sum + 1), 0.0);
        }
        for (a, &p) in dist.iter().enumerate() {
            let a2 = a + shift;
            if a2 <= max_sum && p != 0.0 {
                slot[a2] += p;
            }
        }
    }
    // Ensure every separator assignment has a (possibly zero) distribution.
    for slot in &mut out {
        if slot.is_empty() {
            slot.push(0.0);
        }
    }
    out
}

fn convolve_capped(a: &[f64], b: &[f64], max_sum: usize) -> Vec<f64> {
    let n = (a.len() + b.len() - 1).min(max_sum + 1);
    let mut out = vec![0.0; n];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            if i + j < n {
                out[i + j] += x * y;
            }
        }
    }
    out
}

/// Positional probabilities `Pr(r(t) = j)` for every tuple of a relation
/// whose correlations are given by a calibrated junction tree over the
/// tuple-existence indicators (`X_i ↔ scores[i]`).
pub fn rank_distributions_junction(jt: &JunctionTree, scores: &[f64]) -> Vec<Vec<f64>> {
    let n = scores.len();
    assert_eq!(jt.n_vars(), n, "one variable per tuple");
    let order = sort_indices_by_score_desc(scores);
    let mut pos = vec![0usize; n];
    for (i, &t) in order.iter().enumerate() {
        pos[t] = i;
    }
    let mut out = vec![vec![0.0; n]; n];
    for t in 0..n {
        // Tuples that can never exist would make the conditioned model
        // degenerate (zero mass); their rank distribution is identically 0.
        if jt.marginal(VarId(t as u32)) <= 0.0 {
            continue;
        }
        let (cond, p_exists) = jt.conditioned(VarId(t as u32), true);
        let deltas: Vec<bool> = (0..n).map(|l| l != t && pos[l] < pos[t]).collect();
        let sums = sum_distribution(&cond, &deltas);
        for (a, &p) in sums.iter().enumerate() {
            if a < n {
                out[t][a] = p * p_exists;
            }
        }
    }
    out
}

/// Convenience: rank distributions straight from a Markov network.
pub fn rank_distributions_network(net: &MarkovNetwork, scores: &[f64]) -> Vec<Vec<f64>> {
    rank_distributions_junction(&net.junction_tree(), scores)
}

/// Υ values for every tuple of a junction-tree-correlated relation under an
/// arbitrary PRF weight function.
pub fn prf_rank_junction(
    jt: &JunctionTree,
    scores: &[f64],
    omega: &dyn prf_core::weights::WeightFunction,
) -> Vec<Complex> {
    let dists = rank_distributions_junction(jt, scores);
    upsilons_from_dists(&dists, scores, omega)
}

/// Υ values for a Markov-chain-correlated relation using the `O(n³)`
/// specialised algorithm of Section 9.3.
pub fn prf_rank_markov_chain(
    chain: &MarkovChain,
    scores: &[f64],
    omega: &dyn prf_core::weights::WeightFunction,
) -> Vec<Complex> {
    let dists = chain.rank_distributions(scores);
    upsilons_from_dists(&dists, scores, omega)
}

/// The ranking adapter plugging junction-tree-correlated relations into the
/// unified query engine: a calibrated [`JunctionTree`] over the
/// tuple-existence indicators plus the tuple scores.
///
/// Implements [`prf_core::query::ProbabilisticRelation`], so any PRFω/PRFe
/// [`prf_core::query::RankQuery`] runs on it unchanged; positional
/// probabilities come from the Section 9.4 partial-sum dynamic program.
/// The set semantics (U-Top) and E-Rank have no exact junction-tree
/// algorithm here and report `Unsupported`.
///
/// ```
/// use prf_core::query::RankQuery;
/// use prf_graphical::{Factor, MarkovNetwork, NetworkRelation, VarId};
///
/// // Two positively correlated tuples and an independent third.
/// let net = MarkovNetwork::new(
///     3,
///     vec![
///         Factor::new(vec![VarId(0), VarId(1)], vec![0.3, 0.1, 0.1, 0.5]),
///         Factor::new(vec![VarId(2)], vec![0.4, 0.6]),
///     ],
/// );
/// let rel = NetworkRelation::new(&net, vec![30.0, 20.0, 10.0]);
/// let result = RankQuery::pt(2).run(&rel)?;
/// assert_eq!(result.ranking.len(), 3);
/// # Ok::<(), prf_core::query::QueryError>(())
/// ```
pub struct NetworkRelation {
    jt: JunctionTree,
    scores: Vec<f64>,
}

impl NetworkRelation {
    /// Builds the adapter from a Markov network (constructs and calibrates
    /// the junction tree) and per-tuple scores.
    ///
    /// # Panics
    /// Panics when `scores` does not have one entry per network variable.
    pub fn new(net: &MarkovNetwork, scores: Vec<f64>) -> Self {
        Self::from_junction(net.junction_tree(), scores)
    }

    /// Builds the adapter from an already calibrated junction tree.
    ///
    /// # Panics
    /// Panics when `scores` does not have one entry per variable.
    pub fn from_junction(jt: JunctionTree, scores: Vec<f64>) -> Self {
        assert_eq!(jt.n_vars(), scores.len(), "one score per tuple variable");
        NetworkRelation { jt, scores }
    }

    /// The underlying calibrated junction tree.
    pub fn junction_tree(&self) -> &JunctionTree {
        &self.jt
    }

    /// Positional probabilities `Pr(r(t) = j)` for every tuple.
    pub fn rank_distributions(&self) -> Vec<Vec<f64>> {
        rank_distributions_junction(&self.jt, &self.scores)
    }
}

impl prf_core::query::ProbabilisticRelation for NetworkRelation {
    fn n_tuples(&self) -> usize {
        self.scores.len()
    }

    fn tuple_scores(&self) -> Vec<f64> {
        self.scores.clone()
    }

    fn tuple_marginals(&self) -> Vec<f64> {
        (0..self.scores.len())
            .map(|t| self.jt.marginal(VarId(t as u32)))
            .collect()
    }

    fn correlation_class(&self) -> prf_core::query::CorrelationClass {
        prf_core::query::CorrelationClass::Graphical
    }

    fn prf_values(
        &self,
        omega: &(dyn prf_core::weights::WeightFunction + Sync),
        _threads: Option<usize>,
    ) -> Vec<Complex> {
        prf_rank_junction(&self.jt, &self.scores, omega)
    }

    fn prfe_values(&self, alpha: Complex) -> Vec<Complex> {
        prf_rank_junction(
            &self.jt,
            &self.scores,
            &prf_core::weights::ExponentialWeight { alpha },
        )
    }
}

fn upsilons_from_dists(
    dists: &[Vec<f64>],
    scores: &[f64],
    omega: &dyn prf_core::weights::WeightFunction,
) -> Vec<Complex> {
    let marginals: Vec<f64> = dists.iter().map(|d| d.iter().sum()).collect();
    dists
        .iter()
        .enumerate()
        .map(|(t, dist)| {
            let tv = Tuple {
                id: TupleId(t as u32),
                score: scores[t],
                prob: marginals[t],
            };
            let mut acc = Complex::ZERO;
            for (j0, &p) in dist.iter().enumerate() {
                if p != 0.0 {
                    acc += omega.weight(&tv, j0 + 1) * p;
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays
mod tests {
    use super::*;
    use crate::factor::Factor;
    use prf_pdb::{PossibleWorld, WorldEnumeration};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// Brute-force world enumeration for an arbitrary network.
    fn worlds_of(net: &MarkovNetwork) -> WorldEnumeration {
        let joint = net.enumerate_joint();
        let worlds = joint
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(mask, &p)| {
                let present: Vec<TupleId> = (0..net.n_vars())
                    .filter(|&j| mask >> j & 1 == 1)
                    .map(|j| TupleId(j as u32))
                    .collect();
                (PossibleWorld::new(present), p)
            })
            .collect();
        WorldEnumeration { worlds }.normalized()
    }

    fn random_network(seed: u64, n: usize, extra_edges: usize) -> MarkovNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut factors = Vec::new();
        // A random spanning tree plus `extra_edges` chords.
        for j in 1..n {
            let parent = rng.gen_range(0..j);
            factors.push(Factor::new(
                vec![v(parent as u32), v(j as u32)],
                (0..4).map(|_| rng.gen_range(0.05..1.0)).collect(),
            ));
        }
        for _ in 0..extra_edges {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                factors.push(Factor::new(
                    vec![v(a.min(b) as u32), v(a.max(b) as u32)],
                    (0..4).map(|_| rng.gen_range(0.05..1.0)).collect(),
                ));
            }
        }
        // Singleton biases.
        for j in 0..n {
            factors.push(Factor::new(
                vec![v(j as u32)],
                vec![rng.gen_range(0.2..1.0), rng.gen_range(0.2..1.0)],
            ));
        }
        MarkovNetwork::new(n, factors)
    }

    #[test]
    fn junction_rank_distributions_match_enumeration() {
        for seed in 0..6u64 {
            let n = 6;
            let net = random_network(seed, n, 2);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
            let got = rank_distributions_network(&net, &scores);
            let worlds = worlds_of(&net);
            for t in 0..n {
                let brute = worlds.rank_distribution(TupleId(t as u32), n, &scores);
                for r in 0..n {
                    assert!(
                        (got[t][r] - brute[r]).abs() < 1e-9,
                        "seed {seed} t{t} r{r}: {} vs {}",
                        got[t][r],
                        brute[r]
                    );
                }
            }
        }
    }

    #[test]
    fn markov_chain_specialisation_matches_junction_tree() {
        let chain = MarkovChain::new(
            [0.45, 0.55],
            vec![
                [[0.6, 0.4], [0.3, 0.7]],
                [[0.8, 0.2], [0.25, 0.75]],
                [[0.5, 0.5], [0.5, 0.5]],
                [[0.1, 0.9], [0.95, 0.05]],
            ],
        );
        let scores = [30.0, 10.0, 50.0, 20.0, 40.0];
        let via_chain = chain.rank_distributions(&scores);
        let via_jt = rank_distributions_network(&chain.to_network(), &scores);
        for t in 0..5 {
            for r in 0..5 {
                assert!(
                    (via_chain[t][r] - via_jt[t][r]).abs() < 1e-9,
                    "t{t} r{r}: {} vs {}",
                    via_chain[t][r],
                    via_jt[t][r]
                );
            }
        }
    }

    #[test]
    fn sum_distribution_over_independent_vars() {
        // Independent biased coins: the sum is Poisson-binomial.
        let ps = [0.3, 0.8, 0.5];
        let factors: Vec<Factor> = ps
            .iter()
            .enumerate()
            .map(|(i, &p)| Factor::new(vec![v(i as u32)], vec![1.0 - p, p]))
            .collect();
        let net = MarkovNetwork::new(3, factors);
        let jt = net.junction_tree();
        let dist = sum_distribution(&jt, &[true, true, true]);
        // Expand Π (1−p + p·x) by hand.
        let mut expect = vec![1.0];
        for &p in &ps {
            let mut next = vec![0.0; expect.len() + 1];
            for (i, &c) in expect.iter().enumerate() {
                next[i] += c * (1.0 - p);
                next[i + 1] += c * p;
            }
            expect = next;
        }
        for (a, &e) in expect.iter().enumerate() {
            assert!((dist[a] - e).abs() < 1e-12, "sum {a}: {} vs {e}", dist[a]);
        }
        // Partial flag sets restrict the sum.
        let partial = sum_distribution(&jt, &[false, true, false]);
        assert!((partial[0] - 0.2).abs() < 1e-12);
        assert!((partial[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn prf_values_from_network_match_independent_algorithm() {
        // An independence network must reproduce prf-core's results.
        let ps = [0.3, 0.8, 0.5, 0.9];
        let scores = [40.0, 30.0, 20.0, 10.0];
        let factors: Vec<Factor> = ps
            .iter()
            .enumerate()
            .map(|(i, &p)| Factor::new(vec![v(i as u32)], vec![1.0 - p, p]))
            .collect();
        let net = MarkovNetwork::new(4, factors);
        let jt = net.junction_tree();
        let db = prf_pdb::IndependentDb::from_pairs(scores.iter().zip(&ps).map(|(&s, &p)| (s, p)))
            .unwrap();
        for w in [
            Box::new(prf_core::weights::StepWeight { h: 2 })
                as Box<dyn prf_core::weights::WeightFunction>,
            Box::new(prf_core::weights::ExponentialWeight::real(0.7)),
        ] {
            let a = prf_rank_junction(&jt, &scores, w.as_ref());
            let b = prf_core::independent::prf_rank(&db, w.as_ref());
            for t in 0..4 {
                assert!(
                    a[t].approx_eq(b[t], 1e-9),
                    "{} t{t}: {} vs {}",
                    w.name(),
                    a[t],
                    b[t]
                );
            }
        }
    }

    #[test]
    fn deterministic_evidence_is_skipped() {
        // A variable that never exists: Pr(r(t)=j) all zero.
        let factors = vec![
            Factor::new(vec![v(0)], vec![1.0, 0.0]),
            Factor::new(vec![v(1)], vec![0.5, 0.5]),
        ];
        let net = MarkovNetwork::new(2, factors);
        let got = rank_distributions_network(&net, &[10.0, 5.0]);
        assert!(got[0].iter().all(|&p| p == 0.0));
        assert!((got[1][0] - 0.5).abs() < 1e-12);
    }
}
