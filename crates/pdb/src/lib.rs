//! Probabilistic database model for the `prf` workspace.
//!
//! Implements the data model of Section 3.1 of Li, Saha & Deshpande
//! (VLDB 2009) under the prevalent *possible worlds* semantics:
//!
//! * [`tuple`](mod@tuple) — scored tuples with existence probabilities,
//! * [`independent`] — tuple-independent probabilistic relations,
//! * [`worlds`] — possible worlds, world probabilities and in-world ranks,
//! * [`andxor`] — probabilistic and/xor trees (Definition 2): the
//!   correlation model that captures mutual exclusivity (∨/xor) and
//!   co-existence (∧/and), generalising x-tuples and block-independent
//!   disjoint models, together with the generic generating-function fold of
//!   Theorem 1,
//! * [`attribute`] — attribute-level uncertainty (discrete score
//!   distributions) compiled into and/xor trees per Section 4.4.

#![deny(missing_docs)]

pub mod andxor;
pub mod attribute;
pub mod independent;
pub mod tuple;
pub mod worlds;

pub use andxor::{AndXorTree, NodeId, NodeKind, PathToRoot, TreeBuilder};
pub use attribute::{AttributeUncertainDb, CompiledAlternatives, UncertainTuple};
pub use independent::IndependentDb;
pub use tuple::{Tuple, TupleId};
pub use worlds::{PossibleWorld, WorldEnumeration};

/// Errors arising from constructing or manipulating probabilistic databases.
#[derive(Clone, Debug, PartialEq)]
pub enum PdbError {
    /// A probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Human-readable location (tuple index, node id, …).
        context: String,
    },
    /// The edge probabilities of a ∨ (xor) node sum to more than one.
    XorProbabilityOverflow {
        /// The offending sum.
        sum: f64,
        /// The ∨ node.
        node: usize,
    },
    /// A score was NaN (scores must be totally orderable).
    InvalidScore {
        /// Human-readable location.
        context: String,
    },
    /// World enumeration would exceed the requested limit.
    TooManyWorlds {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The key constraint of Definition 2 is violated: two leaves share a
    /// possible-worlds key but their least common ancestor is not a ∨ node.
    KeyConstraintViolated {
        /// The two offending tuples.
        tuples: (u32, u32),
    },
    /// A structural error in tree construction (e.g. adding a child to a
    /// leaf, or referencing a node from a different builder).
    Structure(String),
}

impl std::fmt::Display for PdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdbError::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} at {context}")
            }
            PdbError::XorProbabilityOverflow { sum, node } => {
                write!(f, "xor node {node}: edge probabilities sum to {sum} > 1")
            }
            PdbError::InvalidScore { context } => write!(f, "invalid (NaN) score at {context}"),
            PdbError::TooManyWorlds { limit } => {
                write!(f, "possible-world enumeration exceeds limit {limit}")
            }
            PdbError::KeyConstraintViolated { tuples } => write!(
                f,
                "key constraint violated: tuples {} and {} share a key but their LCA is not a xor node",
                tuples.0, tuples.1
            ),
            PdbError::Structure(msg) => write!(f, "tree structure error: {msg}"),
        }
    }
}

impl std::error::Error for PdbError {}

/// Validates that `p` is a finite probability in `[0, 1]`.
pub(crate) fn check_probability(p: f64, context: impl FnOnce() -> String) -> Result<(), PdbError> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(PdbError::InvalidProbability {
            value: p,
            context: context(),
        });
    }
    Ok(())
}

/// Tolerance for ∨-node probability sums (accumulated rounding).
pub(crate) const PROB_SUM_TOL: f64 = 1e-9;
