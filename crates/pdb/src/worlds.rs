//! Possible worlds: instantiations of a probabilistic relation.
//!
//! A possible world is a deterministic subset of the tuples. The semantics of
//! every ranking function in the paper is defined over the distribution of
//! worlds; this module provides the world representation, in-world ranks
//! (`r_pw(t)`, with `∞` for absent tuples), and a small enumeration container
//! used by brute-force test oracles.

use crate::tuple::{sort_indices_by_score_desc, TupleId};

/// A single possible world: the set of present tuples.
///
/// Stored as a sorted vector of tuple ids for cheap set operations and
/// canonical equality.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PossibleWorld {
    present: Vec<TupleId>,
}

impl PossibleWorld {
    /// Creates a world from a list of present tuples (deduplicated, sorted).
    pub fn new(mut present: Vec<TupleId>) -> Self {
        present.sort_unstable();
        present.dedup();
        PossibleWorld { present }
    }

    /// The empty world.
    pub fn empty() -> Self {
        PossibleWorld::default()
    }

    /// Tuples present in this world, ascending by id.
    pub fn tuples(&self) -> &[TupleId] {
        &self.present
    }

    /// Number of tuples present.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// `true` when no tuple is present.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: TupleId) -> bool {
        self.present.binary_search(&t).is_ok()
    }

    /// The rank `r_pw(t)` of tuple `t` in this world given per-tuple scores:
    /// 1-based position when present tuples are sorted by score descending
    /// (ties broken by tuple id), or `None` when `t` is absent — the paper's
    /// `r_pw(t) = ∞`.
    pub fn rank_of(&self, t: TupleId, scores: &[f64]) -> Option<usize> {
        if !self.contains(t) {
            return None;
        }
        let mine = scores[t.index()];
        let mut rank = 1usize;
        for &other in &self.present {
            if other == t {
                continue;
            }
            let s = scores[other.index()];
            if s > mine || (s == mine && other < t) {
                rank += 1;
            }
        }
        Some(rank)
    }

    /// The present tuples ordered by rank (score descending, id ascending) —
    /// the world's deterministic top-list.
    pub fn ranked(&self, scores: &[f64]) -> Vec<TupleId> {
        let local_scores: Vec<f64> = self.present.iter().map(|t| scores[t.index()]).collect();
        sort_indices_by_score_desc(&local_scores)
            .into_iter()
            .map(|i| self.present[i])
            .collect()
    }

    /// The top-`k` prefix of [`PossibleWorld::ranked`].
    pub fn top_k(&self, scores: &[f64], k: usize) -> Vec<TupleId> {
        let mut r = self.ranked(scores);
        r.truncate(k);
        r
    }
}

impl FromIterator<TupleId> for PossibleWorld {
    fn from_iter<I: IntoIterator<Item = TupleId>>(iter: I) -> Self {
        PossibleWorld::new(iter.into_iter().collect())
    }
}

/// A finite enumeration of possible worlds with their probabilities.
///
/// Produced by the brute-force enumerators on [`crate::IndependentDb`] and
/// [`crate::AndXorTree`]; the test oracles compute every ranking semantics
/// directly from this representation.
#[derive(Clone, Debug, Default)]
pub struct WorldEnumeration {
    /// `(world, probability)` pairs; probabilities sum to 1 (within
    /// tolerance) and worlds are distinct.
    pub worlds: Vec<(PossibleWorld, f64)>,
}

impl WorldEnumeration {
    /// Total probability mass (should be ≈ 1).
    pub fn total_probability(&self) -> f64 {
        self.worlds.iter().map(|(_, p)| p).sum()
    }

    /// Number of distinct worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// `true` when no worlds are stored.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Marginal probability of tuple `t`.
    pub fn marginal(&self, t: TupleId) -> f64 {
        self.worlds
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, p)| p)
            .sum()
    }

    /// Positional probability `Pr(r(t) = rank)` computed by brute force.
    pub fn positional_probability(&self, t: TupleId, rank: usize, scores: &[f64]) -> f64 {
        self.worlds
            .iter()
            .filter(|(w, _)| w.rank_of(t, scores) == Some(rank))
            .map(|(_, p)| p)
            .sum()
    }

    /// The full rank distribution `[Pr(r(t)=1), …, Pr(r(t)=n)]`.
    pub fn rank_distribution(&self, t: TupleId, n: usize, scores: &[f64]) -> Vec<f64> {
        let mut dist = vec![0.0; n];
        for (w, p) in &self.worlds {
            if let Some(r) = w.rank_of(t, scores) {
                dist[r - 1] += p;
            }
        }
        dist
    }

    /// Merges duplicate worlds, summing probabilities.
    pub fn normalized(mut self) -> Self {
        self.worlds.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(PossibleWorld, f64)> = Vec::with_capacity(self.worlds.len());
        for (w, p) in self.worlds {
            match merged.last_mut() {
                Some((lw, lp)) if *lw == w => *lp += p,
                _ => merged.push((w, p)),
            }
        }
        WorldEnumeration { worlds: merged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u32) -> TupleId {
        TupleId(i)
    }

    #[test]
    fn world_construction_dedups_and_sorts() {
        let w = PossibleWorld::new(vec![tid(3), tid(1), tid(3)]);
        assert_eq!(w.tuples(), &[tid(1), tid(3)]);
        assert_eq!(w.len(), 2);
        assert!(w.contains(tid(1)));
        assert!(!w.contains(tid(0)));
    }

    #[test]
    fn rank_within_world() {
        // scores: t0=10, t1=30, t2=20.
        let scores = [10.0, 30.0, 20.0];
        let w = PossibleWorld::new(vec![tid(0), tid(1), tid(2)]);
        assert_eq!(w.rank_of(tid(1), &scores), Some(1));
        assert_eq!(w.rank_of(tid(2), &scores), Some(2));
        assert_eq!(w.rank_of(tid(0), &scores), Some(3));
        let partial = PossibleWorld::new(vec![tid(0), tid(2)]);
        assert_eq!(partial.rank_of(tid(0), &scores), Some(2));
        assert_eq!(partial.rank_of(tid(1), &scores), None);
        assert_eq!(w.ranked(&scores), vec![tid(1), tid(2), tid(0)]);
        assert_eq!(w.top_k(&scores, 2), vec![tid(1), tid(2)]);
    }

    #[test]
    fn tie_breaking_by_id() {
        let scores = [5.0, 5.0];
        let w = PossibleWorld::new(vec![tid(0), tid(1)]);
        assert_eq!(w.rank_of(tid(0), &scores), Some(1));
        assert_eq!(w.rank_of(tid(1), &scores), Some(2));
    }

    #[test]
    fn enumeration_marginals_and_rank_dist() {
        let scores = [10.0, 20.0];
        let worlds = WorldEnumeration {
            worlds: vec![
                (PossibleWorld::new(vec![tid(0), tid(1)]), 0.4),
                (PossibleWorld::new(vec![tid(0)]), 0.3),
                (PossibleWorld::empty(), 0.3),
            ],
        };
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        assert!((worlds.marginal(tid(0)) - 0.7).abs() < 1e-12);
        assert!((worlds.marginal(tid(1)) - 0.4).abs() < 1e-12);
        assert!((worlds.positional_probability(tid(0), 1, &scores) - 0.3).abs() < 1e-12);
        assert!((worlds.positional_probability(tid(0), 2, &scores) - 0.4).abs() < 1e-12);
        assert_eq!(worlds.rank_distribution(tid(1), 2, &scores), vec![0.4, 0.0]);
    }

    #[test]
    fn normalization_merges_duplicates() {
        let worlds = WorldEnumeration {
            worlds: vec![
                (PossibleWorld::new(vec![tid(0)]), 0.25),
                (PossibleWorld::new(vec![tid(0)]), 0.25),
                (PossibleWorld::empty(), 0.5),
            ],
        }
        .normalized();
        assert_eq!(worlds.len(), 2);
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        assert!((worlds.marginal(tid(0)) - 0.5).abs() < 1e-12);
    }
}
