//! Tuple-independent probabilistic relations.
//!
//! The simplest and most common uncertainty model: every tuple exists
//! independently with its own probability. Most of the paper's experiments
//! (IIP, Syn-IND) use this model; the and/xor tree of [`crate::andxor`]
//! strictly generalises it.

use rand::Rng;

use crate::tuple::{sort_indices_by_score_desc, Tuple, TupleId};
use crate::worlds::{PossibleWorld, WorldEnumeration};
use crate::{check_probability, PdbError};

/// A probabilistic relation with mutually independent tuples.
#[derive(Clone, Debug, Default)]
pub struct IndependentDb {
    tuples: Vec<Tuple>,
}

impl IndependentDb {
    /// Builds a relation from `(score, probability)` pairs, assigning dense
    /// tuple ids in input order.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<Self, PdbError> {
        let tuples = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (score, prob))| Tuple::new(TupleId(i as u32), score, prob))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IndependentDb { tuples })
    }

    /// Builds a relation from already-validated tuples.
    ///
    /// # Panics
    /// Panics in debug builds if tuple ids are not the dense range `0..n`.
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        debug_assert!(tuples.iter().enumerate().all(|(i, t)| t.id.index() == i));
        IndependentDb { tuples }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples, in id order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// Scores indexed by tuple id.
    pub fn scores(&self) -> Vec<f64> {
        self.tuples.iter().map(|t| t.score).collect()
    }

    /// Probabilities indexed by tuple id.
    pub fn probabilities(&self) -> Vec<f64> {
        self.tuples.iter().map(|t| t.prob).collect()
    }

    /// Tuple ids sorted by score descending (ties by id) — the processing
    /// order of every ranking algorithm.
    pub fn ids_by_score_desc(&self) -> Vec<TupleId> {
        let scores = self.scores();
        sort_indices_by_score_desc(&scores)
            .into_iter()
            .map(|i| TupleId(i as u32))
            .collect()
    }

    /// Expected size of a possible world, `C = Σᵢ pᵢ` (used by expected
    /// ranks).
    pub fn expected_world_size(&self) -> f64 {
        self.tuples.iter().map(|t| t.prob).sum()
    }

    /// Replaces the existence probability of tuple `id`, returning the old
    /// value. Scores (and therefore every cached score order) are untouched.
    pub fn set_prob(&mut self, id: TupleId, prob: f64) -> Result<f64, PdbError> {
        let idx = id.index();
        if idx >= self.tuples.len() {
            return Err(PdbError::Structure(format!("no tuple with id {idx}")));
        }
        check_probability(prob, || format!("tuple {idx}"))?;
        let old = self.tuples[idx].prob;
        self.tuples[idx].prob = prob;
        Ok(old)
    }

    /// Appends a new tuple with the next dense id, returning that id.
    pub fn push_tuple(&mut self, score: f64, prob: f64) -> Result<TupleId, PdbError> {
        let id = TupleId(self.tuples.len() as u32);
        self.tuples.push(Tuple::new(id, score, prob)?);
        Ok(id)
    }

    /// Removes tuple `id` and renumbers every larger id down by one so ids
    /// stay the dense range `0..n`. Returns the removed tuple.
    ///
    /// Renumbering preserves the relative `(score desc, id asc)` order of the
    /// survivors, so a cached score order can be patched by deletion plus
    /// decrement instead of a re-sort.
    pub fn remove_tuple(&mut self, id: TupleId) -> Result<Tuple, PdbError> {
        let idx = id.index();
        if idx >= self.tuples.len() {
            return Err(PdbError::Structure(format!("no tuple with id {idx}")));
        }
        let removed = self.tuples.remove(idx);
        for t in &mut self.tuples[idx..] {
            t.id = TupleId(t.id.0 - 1);
        }
        Ok(removed)
    }

    /// Draws one possible world.
    pub fn sample_world(&self, rng: &mut impl Rng) -> PossibleWorld {
        self.tuples
            .iter()
            .filter(|t| rng.gen::<f64>() < t.prob)
            .map(|t| t.id)
            .collect()
    }

    /// Enumerates all `2^n` possible worlds (skipping zero-probability ones).
    ///
    /// Intended for test oracles; fails when the world count would exceed
    /// `limit`.
    pub fn enumerate_worlds(&self, limit: usize) -> Result<WorldEnumeration, PdbError> {
        // Tuples with p=1 are always present and p=0 never; only uncertain
        // tuples multiply the world count.
        let uncertain: Vec<&Tuple> = self
            .tuples
            .iter()
            .filter(|t| t.prob > 0.0 && t.prob < 1.0)
            .collect();
        let certain: Vec<TupleId> = self
            .tuples
            .iter()
            .filter(|t| t.prob >= 1.0)
            .map(|t| t.id)
            .collect();
        let m = uncertain.len();
        if m >= usize::BITS as usize || (1usize << m) > limit {
            return Err(PdbError::TooManyWorlds { limit });
        }
        let mut worlds = Vec::with_capacity(1 << m);
        for mask in 0u64..(1u64 << m) {
            let mut prob = 1.0;
            let mut present = certain.clone();
            for (bit, t) in uncertain.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    prob *= t.prob;
                    present.push(t.id);
                } else {
                    prob *= 1.0 - t.prob;
                }
            }
            worlds.push((PossibleWorld::new(present), prob));
        }
        Ok(WorldEnumeration { worlds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db3() -> IndependentDb {
        // Example 1 of the paper: p = .5, .6, .4 with descending scores.
        IndependentDb::from_pairs([(30.0, 0.5), (20.0, 0.6), (10.0, 0.4)]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let db = db3();
        assert_eq!(db.len(), 3);
        assert_eq!(db.tuple(TupleId(1)).score, 20.0);
        assert_eq!(db.scores(), vec![30.0, 20.0, 10.0]);
        assert_eq!(db.probabilities(), vec![0.5, 0.6, 0.4]);
        assert!((db.expected_world_size() - 1.5).abs() < 1e-12);
        assert_eq!(
            db.ids_by_score_desc(),
            vec![TupleId(0), TupleId(1), TupleId(2)]
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(IndependentDb::from_pairs([(1.0, 1.5)]).is_err());
        assert!(IndependentDb::from_pairs([(f64::NAN, 0.5)]).is_err());
    }

    #[test]
    fn enumeration_probabilities_sum_to_one() {
        let db = db3();
        let worlds = db.enumerate_worlds(1 << 20).unwrap();
        assert_eq!(worlds.len(), 8);
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        for (i, t) in db.tuples().iter().enumerate() {
            assert!(
                (worlds.marginal(TupleId(i as u32)) - t.prob).abs() < 1e-12,
                "marginal mismatch"
            );
        }
    }

    #[test]
    fn enumeration_rank_distribution_matches_example_1() {
        // Pr(r(t3)=1) = .08, =2 is .2, =3 is .12 (paper Example 1).
        let db = db3();
        let worlds = db.enumerate_worlds(1 << 20).unwrap();
        let scores = db.scores();
        let d = worlds.rank_distribution(TupleId(2), 3, &scores);
        assert!((d[0] - 0.08).abs() < 1e-12);
        assert!((d[1] - 0.20).abs() < 1e-12);
        assert!((d[2] - 0.12).abs() < 1e-12);
    }

    #[test]
    fn certain_tuples_do_not_blow_up_enumeration() {
        let db = IndependentDb::from_pairs([(3.0, 1.0), (2.0, 1.0), (1.0, 0.5)]).unwrap();
        let worlds = db.enumerate_worlds(16).unwrap();
        assert_eq!(worlds.len(), 2);
        assert!((worlds.marginal(TupleId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumeration_limit_enforced() {
        let db = IndependentDb::from_pairs((0..25).map(|i| (i as f64, 0.5))).unwrap();
        assert!(matches!(
            db.enumerate_worlds(1 << 20),
            Err(PdbError::TooManyWorlds { limit }) if limit == 1 << 20
        ));
    }

    #[test]
    fn mutations_keep_ids_dense_and_validate() {
        let mut db = db3();
        assert_eq!(db.set_prob(TupleId(1), 0.9).unwrap(), 0.6);
        assert_eq!(db.probabilities(), vec![0.5, 0.9, 0.4]);
        assert!(db.set_prob(TupleId(1), 1.5).is_err());
        assert!(db.set_prob(TupleId(9), 0.5).is_err());

        let id = db.push_tuple(25.0, 0.3).unwrap();
        assert_eq!(id, TupleId(3));
        assert_eq!(
            db.ids_by_score_desc(),
            vec![TupleId(0), TupleId(3), TupleId(1), TupleId(2)]
        );
        assert!(db.push_tuple(f64::NAN, 0.5).is_err());

        let removed = db.remove_tuple(TupleId(1)).unwrap();
        assert_eq!(removed.score, 20.0);
        assert_eq!(db.len(), 3);
        // Survivors are renumbered densely and keep their relative order.
        assert_eq!(db.scores(), vec![30.0, 10.0, 25.0]);
        assert!(db
            .tuples()
            .iter()
            .enumerate()
            .all(|(i, t)| t.id.index() == i));
        assert!(db.remove_tuple(TupleId(3)).is_err());
    }

    #[test]
    fn sampling_approximates_marginals() {
        let db = db3();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            let w = db.sample_world(&mut rng);
            for (i, c) in counts.iter_mut().enumerate() {
                if w.contains(TupleId(i as u32)) {
                    *c += 1;
                }
            }
        }
        for (i, t) in db.tuples().iter().enumerate() {
            let freq = counts[i] as f64 / trials as f64;
            assert!(
                (freq - t.prob).abs() < 0.02,
                "tuple {i}: {freq} vs {}",
                t.prob
            );
        }
    }
}
