//! Tuples: the unit of ranking.
//!
//! Each tuple carries a *score* (computed by an arbitrary scoring function
//! over its attributes — higher is better) and, in the tuple-independent
//! model, an *existence probability*. Under correlation models the marginal
//! probability is derived from the model instead.

use crate::PdbError;

/// Identifier of a tuple within one probabilistic relation.
///
/// Tuple ids are dense indices `0..n` assigned at construction time, which
/// lets the ranking algorithms use plain vectors as tuple-indexed maps.
#[derive(Clone, Copy, Debug, Default, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A scored tuple with a marginal existence probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tuple {
    /// Identity within the relation.
    pub id: TupleId,
    /// Ranking score; higher scores should rank higher in each world.
    pub score: f64,
    /// Marginal existence probability in `[0, 1]`.
    pub prob: f64,
}

impl Tuple {
    /// Creates a tuple after validating its score and probability.
    pub fn new(id: TupleId, score: f64, prob: f64) -> Result<Self, PdbError> {
        if score.is_nan() {
            return Err(PdbError::InvalidScore {
                context: format!("tuple {id}"),
            });
        }
        crate::check_probability(prob, || format!("tuple {id}"))?;
        Ok(Tuple { id, score, prob })
    }
}

/// Sorts tuple indices by score, descending, breaking ties by tuple id so the
/// order is total and deterministic.
///
/// All ranking algorithms in the workspace process tuples in this order; the
/// paper assumes scores are totally ordered and treats ties as broken
/// arbitrarily-but-consistently.
pub fn sort_indices_by_score_desc(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("scores must not be NaN")
            .then(a.cmp(&b))
    });
    idx
}

/// Compares two tuples by `(score desc, id asc)` — the canonical ranking
/// order used throughout the workspace.
#[inline]
pub fn score_desc_order(a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .expect("scores must not be NaN")
        .then(a.id.cmp(&b.id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_validation() {
        assert!(Tuple::new(TupleId(0), 1.0, 0.5).is_ok());
        assert!(Tuple::new(TupleId(0), f64::NAN, 0.5).is_err());
        assert!(Tuple::new(TupleId(0), 1.0, -0.1).is_err());
        assert!(Tuple::new(TupleId(0), 1.0, 1.1).is_err());
        assert!(Tuple::new(TupleId(0), 1.0, f64::NAN).is_err());
        assert!(Tuple::new(TupleId(0), 1.0, 0.0).is_ok());
        assert!(Tuple::new(TupleId(0), 1.0, 1.0).is_ok());
    }

    #[test]
    fn sorting_is_deterministic_under_ties() {
        let scores = [5.0, 9.0, 5.0, 1.0];
        let order = sort_indices_by_score_desc(&scores);
        assert_eq!(order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn order_comparator_matches_sort() {
        let a = Tuple::new(TupleId(0), 5.0, 0.5).unwrap();
        let b = Tuple::new(TupleId(1), 5.0, 0.9).unwrap();
        let c = Tuple::new(TupleId(2), 7.0, 0.1).unwrap();
        let mut v = [b, a, c];
        v.sort_by(score_desc_order);
        assert_eq!(v[0].id, TupleId(2));
        assert_eq!(v[1].id, TupleId(0));
        assert_eq!(v[2].id, TupleId(1));
    }
}
