//! Attribute-level uncertainty: tuples with uncertain scores (Section 4.4).
//!
//! When the scoring attributes are themselves uncertain, each tuple carries a
//! discrete distribution over possible scores. The paper handles this by
//! *compiling* every `(tuple, score)` alternative into its own pseudo-tuple
//! and adding a ∨ (xor) constraint over the alternatives of each original
//! tuple — an and/xor tree the standard ranking algorithms then process
//! directly. The Υ value of an original tuple is the sum of the Υ values of
//! its alternatives.

use prf_numeric::GfValue;

use crate::andxor::{AndXorTree, NodeKind, TreeBuilder};
use crate::tuple::TupleId;
use crate::{check_probability, PdbError, PROB_SUM_TOL};

/// A tuple whose score follows a discrete distribution.
///
/// Alternative `j` has score `alternatives[j].0` and probability
/// `alternatives[j].1`; the probabilities may sum to less than one, the
/// remainder being the probability that the tuple is absent entirely.
#[derive(Clone, Debug, PartialEq)]
pub struct UncertainTuple {
    /// `(score, probability)` alternatives; mutually exclusive.
    pub alternatives: Vec<(f64, f64)>,
}

impl UncertainTuple {
    /// Creates an uncertain tuple, validating probabilities and scores.
    pub fn new(alternatives: Vec<(f64, f64)>) -> Result<Self, PdbError> {
        let mut sum = 0.0;
        for (j, &(score, prob)) in alternatives.iter().enumerate() {
            if score.is_nan() {
                return Err(PdbError::InvalidScore {
                    context: format!("alternative {j}"),
                });
            }
            check_probability(prob, || format!("alternative {j}"))?;
            sum += prob;
        }
        if sum > 1.0 + PROB_SUM_TOL {
            return Err(PdbError::XorProbabilityOverflow { sum, node: 0 });
        }
        Ok(UncertainTuple { alternatives })
    }

    /// Probability that the tuple exists at all.
    pub fn existence_probability(&self) -> f64 {
        self.alternatives.iter().map(|&(_, p)| p).sum()
    }

    /// Expected score contribution `Σⱼ scoreⱼ·probⱼ` (the E-Score of the
    /// tuple).
    pub fn expected_score(&self) -> f64 {
        self.alternatives.iter().map(|&(s, p)| s * p).sum()
    }
}

/// A relation of independent tuples with uncertain scores.
#[derive(Clone, Debug, Default)]
pub struct AttributeUncertainDb {
    tuples: Vec<UncertainTuple>,
}

impl AttributeUncertainDb {
    /// Builds the relation from per-tuple alternative lists.
    pub fn new(tuples: Vec<UncertainTuple>) -> Self {
        AttributeUncertainDb { tuples }
    }

    /// Number of original tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The original tuples.
    pub fn tuples(&self) -> &[UncertainTuple] {
        &self.tuples
    }

    /// Total number of alternatives across all tuples — the effective input
    /// size `n` of the compiled ranking problem.
    pub fn total_alternatives(&self) -> usize {
        self.tuples.iter().map(|t| t.alternatives.len()).sum()
    }

    /// Compiles the relation into an and/xor tree: an ∧ root with one ∨ node
    /// per original tuple whose children are the score alternatives.
    pub fn compile(&self) -> Result<CompiledAlternatives, PdbError> {
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let mut owner = Vec::with_capacity(self.total_alternatives());
        for (i, t) in self.tuples.iter().enumerate() {
            let xor = b.add_inner(root, NodeKind::Xor, 1.0)?;
            for &(score, prob) in &t.alternatives {
                b.add_leaf(xor, prob, score)?;
                owner.push(i);
            }
        }
        Ok(CompiledAlternatives {
            tree: b.build()?,
            owner,
            n_original: self.tuples.len(),
        })
    }
}

/// The result of compiling attribute uncertainty into an and/xor tree.
#[derive(Clone, Debug)]
pub struct CompiledAlternatives {
    /// The compiled tree; each leaf is one `(tuple, score)` alternative.
    pub tree: AndXorTree,
    /// `owner[alt] =` index of the original tuple owning alternative `alt`.
    pub owner: Vec<usize>,
    /// Number of original tuples.
    pub n_original: usize,
}

impl CompiledAlternatives {
    /// Aggregates per-alternative values to per-original-tuple values by
    /// summation: `Υ(tᵢ) = Σⱼ Υ(tᵢⱼ)` (Section 4.4).
    pub fn aggregate<T: GfValue>(&self, per_alternative: &[T]) -> Vec<T> {
        assert_eq!(per_alternative.len(), self.owner.len());
        let mut out = vec![T::zero(); self.n_original];
        for (alt, v) in per_alternative.iter().enumerate() {
            let o = self.owner[alt];
            out[o] = out[o].add(v);
        }
        out
    }

    /// The compiled alternative ids owned by original tuple `i`.
    pub fn alternatives_of(&self, i: usize) -> Vec<TupleId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == i)
            .map(|(a, _)| TupleId(a as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tuple_db() -> AttributeUncertainDb {
        AttributeUncertainDb::new(vec![
            UncertainTuple::new(vec![(10.0, 0.5), (5.0, 0.3)]).unwrap(),
            UncertainTuple::new(vec![(8.0, 1.0)]).unwrap(),
        ])
    }

    #[test]
    fn validation() {
        assert!(UncertainTuple::new(vec![(1.0, 0.6), (2.0, 0.5)]).is_err());
        assert!(UncertainTuple::new(vec![(f64::NAN, 0.5)]).is_err());
        assert!(UncertainTuple::new(vec![(1.0, -0.1)]).is_err());
        let t = UncertainTuple::new(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap();
        assert!((t.existence_probability() - 1.0).abs() < 1e-12);
        assert!((t.expected_score() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn compile_produces_xor_groups() {
        let db = two_tuple_db();
        assert_eq!(db.total_alternatives(), 3);
        let compiled = db.compile().unwrap();
        assert_eq!(compiled.tree.n_tuples(), 3);
        assert_eq!(compiled.owner, vec![0, 0, 1]);
        let groups = compiled.tree.x_tuple_groups().unwrap();
        assert_eq!(groups.len(), 2);
        // Alternatives of a tuple are mutually exclusive: no world contains
        // two alternatives of tuple 0.
        let worlds = compiled.tree.enumerate_worlds(1 << 12).unwrap();
        for (w, _) in &worlds.worlds {
            assert!(!(w.contains(TupleId(0)) && w.contains(TupleId(1))));
        }
        // Marginals are the alternative probabilities.
        assert!((worlds.marginal(TupleId(0)) - 0.5).abs() < 1e-12);
        assert!((worlds.marginal(TupleId(1)) - 0.3).abs() < 1e-12);
        assert!((worlds.marginal(TupleId(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_sums_alternatives() {
        let db = two_tuple_db();
        let compiled = db.compile().unwrap();
        let per_alt = vec![1.0f64, 10.0, 100.0];
        let agg = compiled.aggregate(&per_alt);
        assert_eq!(agg, vec![11.0, 100.0]);
        assert_eq!(compiled.alternatives_of(0), vec![TupleId(0), TupleId(1)]);
    }
}
