//! `YLin<T>`: ring elements of the form `a + b·y` with `y² = 0`.
//!
//! When an and/xor-tree generating function is evaluated at a *numeric* `x`
//! but keeps `y` formal, the result is linear in `y` (exactly one leaf
//! carries the `y` label). `YLin` performs that evaluation in one bottom-up
//! fold: it is the dual-number construction over an arbitrary
//! [`GfValue`] ring, used by
//!
//! * the roots-of-unity interpolation of Appendix B.2 (evaluate `A` and `B`
//!   at each root of unity simultaneously), and
//! * the recompute-from-scratch PRFe baseline that the incremental
//!   Algorithm 3 is benchmarked against.

use crate::ring::GfValue;

/// `a + b·y` with `y² = 0` over the ring `T`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YLin<T> {
    /// The `y⁰` component.
    pub a: T,
    /// The `y¹` component.
    pub b: T,
}

impl<T: GfValue> YLin<T> {
    /// Embeds a pure `y⁰` value.
    pub fn pure(a: T) -> Self {
        YLin { a, b: T::zero() }
    }

    /// The element `y`.
    pub fn y() -> Self {
        YLin {
            a: T::zero(),
            b: T::one(),
        }
    }
}

impl<T: GfValue> GfValue for YLin<T> {
    fn zero() -> Self {
        YLin {
            a: T::zero(),
            b: T::zero(),
        }
    }

    fn one() -> Self {
        YLin {
            a: T::one(),
            b: T::zero(),
        }
    }

    fn from_scalar(c: f64) -> Self {
        YLin {
            a: T::from_scalar(c),
            b: T::zero(),
        }
    }

    fn add(&self, rhs: &Self) -> Self {
        YLin {
            a: self.a.add(&rhs.a),
            b: self.b.add(&rhs.b),
        }
    }

    fn mul(&self, rhs: &Self) -> Self {
        // (a₁ + b₁y)(a₂ + b₂y) = a₁a₂ + (a₁b₂ + b₁a₂)y  [y² = 0]
        YLin {
            a: self.a.mul(&rhs.a),
            b: self.a.mul(&rhs.b).add(&self.b.mul(&rhs.a)),
        }
    }

    fn scale(&self, c: f64) -> Self {
        YLin {
            a: self.a.scale(c),
            b: self.b.scale(c),
        }
    }

    fn add_scaled_assign(&mut self, rhs: &Self, c: f64) {
        self.a.add_scaled_assign(&rhs.a, c);
        self.b.add_scaled_assign(&rhs.b, c);
    }

    fn add_scaled_diff_assign(&mut self, new: &Self, old: &Self, c: f64) {
        self.a.add_scaled_diff_assign(&new.a, &old.a, c);
        self.b.add_scaled_diff_assign(&new.b, &old.b, c);
    }

    fn heap_coeffs(&self) -> usize {
        self.a.heap_coeffs() + self.b.heap_coeffs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn linear_in_y_product() {
        // (2 + 3y)(4) = 8 + 12y; (2 + 3y)(y·0 + 5) same thing.
        let p = YLin { a: 2.0f64, b: 3.0 };
        let q = YLin::pure(4.0f64);
        let r = p.mul(&q);
        assert_eq!(r.a, 8.0);
        assert_eq!(r.b, 12.0);
    }

    #[test]
    fn y_squared_vanishes() {
        let y = YLin::<f64>::y();
        let yy = y.mul(&y);
        assert_eq!(yy.a, 0.0);
        assert_eq!(yy.b, 0.0);
    }

    #[test]
    fn matches_manual_substitution() {
        // F = (0.5 + 0.5·x)(0.4·x + 0.6·y) at x = 0.3:
        // A = (0.5+0.15)·0.12... compute both ways.
        let x = 0.3f64;
        let f1 = YLin::pure(0.5 + 0.5 * x);
        let f2 = YLin { a: 0.4 * x, b: 0.6 };
        let f = f1.mul(&f2);
        let a_direct = (0.5 + 0.5 * x) * (0.4 * x);
        let b_direct = (0.5 + 0.5 * x) * 0.6;
        assert!((f.a - a_direct).abs() < 1e-12);
        assert!((f.b - b_direct).abs() < 1e-12);
    }

    #[test]
    fn works_over_complex() {
        let i = Complex::new(0.0, 1.0);
        let p = YLin {
            a: i,
            b: Complex::ONE,
        };
        let q = YLin::pure(i);
        let r = p.mul(&q);
        assert!(r.a.approx_eq(Complex::real(-1.0), 1e-12));
        assert!(r.b.approx_eq(i, 1e-12));
    }
}
