//! Minimal but complete complex-number arithmetic.
//!
//! The workspace deliberately avoids external numeric crates; this module
//! implements the subset of complex arithmetic the paper's algorithms need:
//! field operations, conjugation, magnitude, integer powers, `exp`, and the
//! unit roots used by the FFT and the DFT-based approximation of Section 5.1.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// The primitive `n`-th root of unity `e^{2πi/n}` (or its inverse).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn root_of_unity(n: usize, inverse: bool) -> Self {
        assert!(n > 0, "root_of_unity: n must be positive");
        let sign = if inverse { -1.0 } else { 1.0 };
        Complex::cis(sign * 2.0 * std::f64::consts::PI / n as f64)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns `NaN` components when `self` is zero, mirroring `1.0 / 0.0`
    /// behaviour for floats (the caller is responsible for guarding zeros;
    /// the ranking algorithms use explicit zero-count bookkeeping instead of
    /// dividing by values that may be exactly zero).
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, mut n: i64) -> Self {
        if n < 0 {
            return self.inv().powi(-n);
        }
        let mut base = self;
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` (per component).
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by inverse
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn field_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!((a + b).approx_eq(Complex::new(-2.0, 2.5), TOL));
        assert!((a - b).approx_eq(Complex::new(4.0, 1.5), TOL));
        assert!((a * b).approx_eq(Complex::new(-4.0, -5.5), TOL));
        assert!((a * b / b).approx_eq(a, TOL));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), TOL));
    }

    #[test]
    fn inverse_roundtrip() {
        let z = Complex::new(0.7, -0.2);
        assert!((z * z.inv()).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 1.1);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 1.1).abs() < TOL);
    }

    #[test]
    fn powers() {
        let z = Complex::new(0.0, 1.0);
        assert!(z.powi(2).approx_eq(Complex::real(-1.0), TOL));
        assert!(z.powi(4).approx_eq(Complex::ONE, TOL));
        assert!(z.powi(-1).approx_eq(Complex::new(0.0, -1.0), TOL));
        let w = Complex::new(1.5, -0.5);
        assert!(w.powi(3).approx_eq(w * w * w, 1e-10));
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex::new(0.0, std::f64::consts::PI);
        assert!(z.exp().approx_eq(Complex::real(-1.0), 1e-12));
        let w = Complex::new(1.0, 0.0);
        assert!(w.exp().approx_eq(Complex::real(std::f64::consts::E), 1e-12));
    }

    #[test]
    fn roots_of_unity_cycle() {
        let n = 8;
        let w = Complex::root_of_unity(n, false);
        assert!(w.powi(n as i64).approx_eq(Complex::ONE, 1e-12));
        let wi = Complex::root_of_unity(n, true);
        assert!((w * wi).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn sum_product_iterators() {
        let xs = [
            Complex::real(1.0),
            Complex::real(2.0),
            Complex::new(0.0, 1.0),
        ];
        let s: Complex = xs.iter().copied().sum();
        assert!(s.approx_eq(Complex::new(3.0, 1.0), TOL));
        let p: Complex = xs.iter().copied().product();
        assert!(p.approx_eq(Complex::new(0.0, 2.0), TOL));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, 1.0);
        assert!((z * 2.0).approx_eq(Complex::new(2.0, 2.0), TOL));
        assert!((z / 2.0).approx_eq(Complex::new(0.5, 0.5), TOL));
        assert!((z + 1.0).approx_eq(Complex::new(2.0, 1.0), TOL));
        assert!((z - 1.0).approx_eq(Complex::new(0.0, 1.0), TOL));
    }
}
