//! Fast Fourier transforms over [`Complex`].
//!
//! Used in three places in the workspace:
//! 1. FFT-based polynomial multiplication (Appendix B.1 of the paper),
//! 2. the roots-of-unity interpolation that expands and/xor-tree generating
//!    functions in `O(n²)` per tuple (Appendix B.2, Algorithm 2),
//! 3. the Discrete Fourier Transform that seeds the PRFe-mixture
//!    approximation of arbitrary weight functions (Section 5.1).
//!
//! The convention throughout is the standard one:
//! forward `X(k) = Σᵢ x(i)·e^{-2πi·ki/n}`, inverse
//! `x(i) = (1/n)·Σₖ X(k)·e^{+2πi·ki/n}`.

use crate::complex::Complex;

/// In-place radix-2 Cooley–Tukey FFT.
///
/// `buf.len()` must be a power of two. When `inverse` is true the inverse
/// transform is computed, including the `1/n` normalisation, so that
/// `fft(fft(x, false), true) == x` up to rounding.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
pub fn fft(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft: length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    let mut len = 2;
    while len <= n {
        let ang = 2.0 * std::f64::consts::PI / len as f64 * if inverse { 1.0 } else { -1.0 };
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }

    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in buf.iter_mut() {
            *x = *x * inv_n;
        }
    }
}

/// Naive `O(n²)` discrete Fourier transform: `X(k) = Σᵢ x(i)·e^{-2πi·ki/n}`.
///
/// Works for any length (not just powers of two). Primarily used to
/// cross-check [`fft`] and for the small transforms in the DFT-based weight
/// approximation where clarity matters more than speed.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (i, &x) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k as f64) * (i as f64) / n as f64;
            acc += x * Complex::cis(ang);
        }
        *o = acc;
    }
    out
}

/// Forward DFT of arbitrary length: FFT for powers of two, naive otherwise.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    if input.len().is_power_of_two() {
        let mut buf = input.to_vec();
        fft(&mut buf, false);
        buf
    } else {
        dft_naive(input)
    }
}

/// Inverse DFT matching [`dft`], including the `1/n` normalisation.
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft(&mut buf, true);
        buf
    } else {
        // Conjugate trick: IDFT(x) = conj(DFT(conj(x))) / n.
        let conj: Vec<Complex> = input.iter().map(|z| z.conj()).collect();
        dft_naive(&conj)
            .into_iter()
            .map(|z| z.conj() / n as f64)
            .collect()
    }
}

/// Multiplies two complex polynomials (dense coefficient vectors, lowest
/// degree first) using the FFT. Output length is `a.len() + b.len() − 1`.
pub fn multiply_fft(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let result_len = a.len() + b.len() - 1;
    let size = result_len.next_power_of_two();
    let mut fa = vec![Complex::ZERO; size];
    let mut fb = vec![Complex::ZERO; size];
    fa[..a.len()].copy_from_slice(a);
    fb[..b.len()].copy_from_slice(b);
    fft(&mut fa, false);
    fft(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x *= *y;
    }
    fft(&mut fa, true);
    fa.truncate(result_len);
    fa
}

/// Multiplies two real polynomials via the FFT, returning real coefficients.
pub fn multiply_fft_real(a: &[f64], b: &[f64]) -> Vec<f64> {
    let ca: Vec<Complex> = a.iter().map(|&x| Complex::real(x)).collect();
    let cb: Vec<Complex> = b.iter().map(|&x| Complex::real(x)).collect();
    multiply_fft(&ca, &cb).into_iter().map(|z| z.re).collect()
}

/// Evaluates the polynomial with the given coefficients at every `m`-th root
/// of unity, returning `values[k] = P(ω^k)` with `ω = e^{+2πi/m}`.
///
/// # Panics
/// Panics if `m` is not a power of two or `coeffs.len() > m`.
pub fn evaluate_at_roots_of_unity(coeffs: &[Complex], m: usize) -> Vec<Complex> {
    assert!(m.is_power_of_two(), "m must be a power of two");
    assert!(coeffs.len() <= m, "degree must be < m");
    // P(ω^k) = Σᵢ cᵢ e^{+2πi·ki/m} = m · IFFT(c)[k].
    let mut buf = vec![Complex::ZERO; m];
    buf[..coeffs.len()].copy_from_slice(coeffs);
    fft(&mut buf, true);
    for v in buf.iter_mut() {
        *v = *v * m as f64;
    }
    buf
}

/// Recovers the coefficients of a polynomial of degree `< m` from its values
/// at the `m` power-of-two roots of unity (`values[k] = P(ω^k)` with
/// `ω = e^{+2πi/m}`).
///
/// This is Algorithm 2 of Appendix B.2: evaluating a nested generating
/// function bottom-up at each root of unity costs `O(n)` per point, and a
/// single FFT then recovers every coefficient
/// (`cᵢ = (1/m)·Σₖ values[k]·e^{-2πi·ki/m}`).
///
/// # Panics
/// Panics if `values.len()` is not a power of two.
pub fn interpolate_from_roots_of_unity(values: &[Complex]) -> Vec<Complex> {
    let m = values.len();
    assert!(m.is_power_of_two(), "values length must be a power of two");
    let mut buf = values.to_vec();
    fft(&mut buf, false);
    for v in buf.iter_mut() {
        *v = *v / m as f64;
    }
    buf
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(x.approx_eq(*y, tol), "{x} vs {y}");
        }
    }

    #[test]
    fn fft_roundtrip() {
        let original: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * i) as f64 * 0.1))
            .collect();
        let mut buf = original.clone();
        fft(&mut buf, false);
        fft(&mut buf, true);
        assert_close(&buf, &original, 1e-9);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let input: Vec<Complex> = (0..8)
            .map(|i| Complex::new(i as f64, -0.5 * i as f64))
            .collect();
        let mut viafft = input.clone();
        fft(&mut viafft, false);
        let naive = dft_naive(&input);
        assert_close(&viafft, &naive, 1e-9);
    }

    #[test]
    fn dft_idft_roundtrip_any_length() {
        for n in [1usize, 2, 3, 7, 8, 12, 16] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
                .collect();
            let back = idft(&dft(&input));
            assert_close(&back, &input, 1e-9);
        }
    }

    #[test]
    fn multiply_small() {
        // (1 + 2x)(3 + x) = 3 + 7x + 2x².
        let a = [Complex::real(1.0), Complex::real(2.0)];
        let b = [Complex::real(3.0), Complex::real(1.0)];
        let p = multiply_fft(&a, &b);
        assert_close(
            &p,
            &[Complex::real(3.0), Complex::real(7.0), Complex::real(2.0)],
            1e-9,
        );
    }

    #[test]
    fn multiply_real_matches_schoolbook() {
        let a = [0.5, -1.0, 2.0, 0.0, 3.0];
        let b = [1.0, 4.0, -2.0];
        let got = multiply_fft_real(&a, &b);
        let mut want = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                want[i + j] += x * y;
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn roots_of_unity_evaluation_is_pointwise() {
        let coeffs: Vec<Complex> = [0.2, -1.0, 1.5].iter().map(|&c| Complex::real(c)).collect();
        let m = 4;
        let values = evaluate_at_roots_of_unity(&coeffs, m);
        for k in 0..m {
            let w = Complex::cis(2.0 * std::f64::consts::PI * k as f64 / m as f64);
            let mut direct = Complex::ZERO;
            let mut pw = Complex::ONE;
            for &c in &coeffs {
                direct += c * pw;
                pw *= w;
            }
            assert!(
                values[k].approx_eq(direct, 1e-9),
                "{} vs {}",
                values[k],
                direct
            );
        }
    }

    #[test]
    fn roots_of_unity_interpolation_roundtrip() {
        let coeffs: Vec<Complex> = [0.2, 0.0, 1.5, -0.7, 0.0, 0.25]
            .iter()
            .map(|&c| Complex::real(c))
            .collect();
        let values = evaluate_at_roots_of_unity(&coeffs, 8);
        let recovered = interpolate_from_roots_of_unity(&values);
        for (i, c) in coeffs.iter().enumerate() {
            assert!(recovered[i].approx_eq(*c, 1e-9));
        }
        for r in &recovered[coeffs.len()..] {
            assert!(r.approx_eq(Complex::ZERO, 1e-9));
        }
    }

    #[test]
    fn empty_and_unit_cases() {
        assert!(multiply_fft(&[], &[Complex::ONE]).is_empty());
        let a = [Complex::real(5.0)];
        let b = [Complex::real(3.0)];
        let p = multiply_fft(&a, &b);
        assert_eq!(p.len(), 1);
        assert!(p[0].approx_eq(Complex::real(15.0), 1e-12));
    }
}
