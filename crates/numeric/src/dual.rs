//! Forward-mode dual numbers: `a + b·ε` with `ε² = 0`.
//!
//! Evaluating a generating function `F` over duals at `x = x₀ + ε` yields
//! `F(x₀) + F′(x₀)·ε` in a single bottom-up pass. The workspace uses this to
//! compute *expected ranks* on and/xor trees: both `er₁ = B(1) + B′(1)` and
//! `er₂ = A′(1)` (Section 3.3 of the paper) are first derivatives of the same
//! generating functions the PRFe algorithm already evaluates, so running that
//! algorithm over [`Dual`] generalises Cormode et al.'s expected ranks to
//! correlated data at no asymptotic cost.

use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A dual number `v + d·ε` where `ε² = 0`.
///
/// `v` carries the value of the computation; `d` carries the derivative with
/// respect to whichever seed variable was initialised with `d = 1`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Dual {
    /// The value component.
    pub v: f64,
    /// The derivative component.
    pub d: f64,
}

impl Dual {
    /// Additive identity.
    pub const ZERO: Dual = Dual { v: 0.0, d: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Dual = Dual { v: 1.0, d: 0.0 };

    /// A constant (derivative zero).
    #[inline]
    pub const fn constant(v: f64) -> Self {
        Dual { v, d: 0.0 }
    }

    /// The seed variable `v + ε`: evaluating `F` at this point produces
    /// `F(v) + F′(v)·ε`.
    #[inline]
    pub const fn variable(v: f64) -> Self {
        Dual { v, d: 1.0 }
    }

    /// Creates a dual from explicit components.
    #[inline]
    pub const fn new(v: f64, d: f64) -> Self {
        Dual { v, d }
    }

    /// Multiplicative inverse `1/(v + dε) = 1/v − (d/v²)ε`.
    #[inline]
    pub fn inv(self) -> Self {
        let iv = 1.0 / self.v;
        Dual::new(iv, -self.d * iv * iv)
    }

    /// `true` when the *value* component is exactly zero — used by the
    /// zero-count bookkeeping in incremental ∧-node updates, where a zero
    /// value would poison multiplicative caches. (A zero value with non-zero
    /// derivative is still treated as zero for cache purposes; callers that
    /// need exact derivatives through such points fall back to recomputing.)
    #[inline]
    pub fn is_zero(self) -> bool {
        self.v == 0.0
    }

    /// Approximate equality within per-component tolerance.
    #[inline]
    pub fn approx_eq(self, other: Dual, tol: f64) -> bool {
        (self.v - other.v).abs() <= tol && (self.d - other.d).abs() <= tol
    }
}

impl From<f64> for Dual {
    #[inline]
    fn from(v: f64) -> Self {
        Dual::constant(v)
    }
}

impl Add for Dual {
    type Output = Dual;
    #[inline]
    fn add(self, rhs: Dual) -> Dual {
        Dual::new(self.v + rhs.v, self.d + rhs.d)
    }
}

impl Sub for Dual {
    type Output = Dual;
    #[inline]
    fn sub(self, rhs: Dual) -> Dual {
        Dual::new(self.v - rhs.v, self.d - rhs.d)
    }
}

impl Mul for Dual {
    type Output = Dual;
    #[inline]
    fn mul(self, rhs: Dual) -> Dual {
        Dual::new(self.v * rhs.v, self.v * rhs.d + self.d * rhs.v)
    }
}

impl Div for Dual {
    type Output = Dual;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by inverse
    fn div(self, rhs: Dual) -> Dual {
        self * rhs.inv()
    }
}

impl Neg for Dual {
    type Output = Dual;
    #[inline]
    fn neg(self) -> Dual {
        Dual::new(-self.v, -self.d)
    }
}

impl Mul<f64> for Dual {
    type Output = Dual;
    #[inline]
    fn mul(self, rhs: f64) -> Dual {
        Dual::new(self.v * rhs, self.d * rhs)
    }
}

impl AddAssign for Dual {
    #[inline]
    fn add_assign(&mut self, rhs: Dual) {
        *self = *self + rhs;
    }
}

impl SubAssign for Dual {
    #[inline]
    fn sub_assign(&mut self, rhs: Dual) {
        *self = *self - rhs;
    }
}

impl MulAssign for Dual {
    #[inline]
    fn mul_assign(&mut self, rhs: Dual) {
        *self = *self * rhs;
    }
}

impl DivAssign for Dual {
    #[inline]
    fn div_assign(&mut self, rhs: Dual) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluate a polynomial with Horner's rule over any ring-ish type.
    fn horner(coeffs: &[f64], x: Dual) -> Dual {
        let mut acc = Dual::ZERO;
        for &c in coeffs.iter().rev() {
            acc = acc * x + Dual::constant(c);
        }
        acc
    }

    #[test]
    fn derivative_of_polynomial() {
        // p(x) = 2 + 3x + 5x², p'(x) = 3 + 10x.
        let p = [2.0, 3.0, 5.0];
        let at = horner(&p, Dual::variable(2.0));
        assert!((at.v - (2.0 + 6.0 + 20.0)).abs() < 1e-12);
        assert!((at.d - (3.0 + 20.0)).abs() < 1e-12);
    }

    #[test]
    fn product_rule() {
        let x = Dual::variable(1.5);
        // f(x) = x², g(x) = 3x + 1 ⇒ (fg)' = 2x(3x+1) + 3x².
        let f = x * x;
        let g = x * 3.0 + Dual::constant(1.0);
        let fg = f * g;
        let expect = 2.0 * 1.5 * (3.0 * 1.5 + 1.0) + 3.0 * 1.5 * 1.5;
        assert!((fg.d - expect).abs() < 1e-12);
    }

    #[test]
    fn quotient_rule() {
        let x = Dual::variable(2.0);
        // f(x) = 1/x ⇒ f'(2) = -1/4.
        let f = Dual::ONE / x;
        assert!((f.v - 0.5).abs() < 1e-12);
        assert!((f.d + 0.25).abs() < 1e-12);
    }

    #[test]
    fn inv_roundtrip() {
        let x = Dual::new(3.0, 2.0);
        let y = x * x.inv();
        assert!(y.approx_eq(Dual::ONE, 1e-12));
    }

    #[test]
    fn generating_function_mean() {
        // G(x) = Π (1-p + p·x): G'(1) = Σ p = expected count.
        let ps = [0.3, 0.5, 0.9, 0.1];
        let x = Dual::variable(1.0);
        let mut g = Dual::ONE;
        for &p in &ps {
            g *= Dual::constant(1.0 - p) + x * p;
        }
        assert!((g.v - 1.0).abs() < 1e-12);
        let mean: f64 = ps.iter().sum();
        assert!((g.d - mean).abs() < 1e-12);
    }
}
