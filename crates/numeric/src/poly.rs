//! Dense univariate polynomials with real coefficients.
//!
//! Provides the three multiplication strategies discussed in Appendix B.1 of
//! the paper — naive schoolbook, FFT-based, and the divide-and-conquer
//! product of *many* polynomials — plus evaluation, formal derivatives, and
//! the synthetic division by a linear factor that powers the x-tuple fast
//! path for PT(h).

use crate::complex::Complex;
use crate::fft::multiply_fft_real;

/// Degree threshold below which schoolbook multiplication beats the FFT.
///
/// Bench-backed (`cargo bench -p prf-bench --bench numeric`, group
/// `poly_pair_multiply`, equal-length operands, 2026-07-30): naive wins
/// 3.6 µs vs 12.8 µs at n = 128 and 53 µs vs 65 µs at n = 512; the FFT wins
/// 143 µs vs 221 µs at n = 1024 and 838 µs vs 5.04 ms at n = 4096. The
/// crossover sits between 512 and 1024, so the gate keeps schoolbook up to
/// min-length 512. (The previous value, 64, paid up to ~3.5× on
/// mid-size products.)
const FFT_CUTOFF: usize = 512;

/// A dense polynomial `c₀ + c₁x + c₂x² + …` (lowest degree first).
///
/// The zero polynomial is represented by an empty coefficient vector; all
/// constructors and operations normalise away trailing zero coefficients that
/// are *exactly* zero.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![1.0] }
    }

    /// A constant polynomial.
    pub fn constant(c: f64) -> Self {
        if c == 0.0 {
            Poly::zero()
        } else {
            Poly { coeffs: vec![c] }
        }
    }

    /// Builds a polynomial from coefficients (lowest degree first).
    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        let mut p = Poly { coeffs };
        p.normalize();
        p
    }

    /// The linear polynomial `a + b·x`.
    pub fn linear(a: f64, b: f64) -> Self {
        Poly::from_coeffs(vec![a, b])
    }

    fn normalize(&mut self) {
        while self.coeffs.last() == Some(&0.0) {
            self.coeffs.pop();
        }
    }

    /// Coefficient slice (lowest degree first); empty for the zero polynomial.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The coefficient of `x^i` (zero beyond the stored degree).
    #[inline]
    pub fn coeff(&self, i: usize) -> f64 {
        self.coeffs.get(i).copied().unwrap_or(0.0)
    }

    /// Degree of the polynomial; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Horner evaluation at a real point.
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Horner evaluation at a complex point.
    pub fn eval_complex(&self, x: Complex) -> Complex {
        let mut acc = Complex::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + Complex::real(c);
        }
        acc
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::from_coeffs(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c * (i + 1) as f64)
                .collect(),
        )
    }

    /// Sum of two polynomials.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.coeff(i) + rhs.coeff(i);
        }
        Poly::from_coeffs(out)
    }

    /// In-place `self += c·(a − b)`, truncated to keep at most `cap`
    /// coefficients — the fused ∨-node delta update of the incremental
    /// tree evaluator. Touches each coefficient once and reallocates only
    /// when the result is longer than the current buffer.
    pub fn add_scaled_diff_in_place(&mut self, a: &Poly, b: &Poly, c: f64, cap: usize) {
        let n = self
            .coeffs
            .len()
            .max(a.coeffs.len())
            .max(b.coeffs.len())
            .min(cap);
        if self.coeffs.len() < n {
            self.coeffs.resize(n, 0.0);
        }
        for (i, o) in self.coeffs.iter_mut().enumerate().take(n) {
            *o += c * (a.coeff(i) - b.coeff(i));
        }
        self.coeffs.truncate(n);
        self.normalize();
    }

    /// `self + c·rhs`.
    pub fn add_scaled(&self, rhs: &Poly, c: f64) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.coeff(i) + c * rhs.coeff(i);
        }
        Poly::from_coeffs(out)
    }

    /// Scales every coefficient by `c`.
    pub fn scale(&self, c: f64) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&x| x * c).collect())
    }

    /// Schoolbook `O(nm)` product.
    pub fn mul_naive(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::from_coeffs(out)
    }

    /// FFT-based `O(n log n)` product.
    pub fn mul_fft(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        Poly::from_coeffs(multiply_fft_real(&self.coeffs, &rhs.coeffs))
    }

    /// Product that picks naive vs FFT depending on size.
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.coeffs.len().min(rhs.coeffs.len()) <= FFT_CUTOFF {
            self.mul_naive(rhs)
        } else {
            self.mul_fft(rhs)
        }
    }

    /// Product truncated to degree `< cap` (keeping `cap` coefficients).
    ///
    /// Used by PRFω(h) computations where only ranks `≤ h` carry non-zero
    /// weight, giving `O(n·h)` overall work instead of `O(n²)`.
    pub fn mul_truncated(&self, rhs: &Poly, cap: usize) -> Poly {
        if self.is_zero() || rhs.is_zero() || cap == 0 {
            return Poly::zero();
        }
        let n = (self.coeffs.len() + rhs.coeffs.len() - 1).min(cap);
        let mut out = vec![0.0; n];
        for (i, &a) in self.coeffs.iter().enumerate().take(n) {
            if a == 0.0 {
                continue;
            }
            let jmax = (n - i).min(rhs.coeffs.len());
            for (j, &b) in rhs.coeffs.iter().enumerate().take(jmax) {
                out[i + j] += a * b;
            }
        }
        Poly::from_coeffs(out)
    }

    /// Multiplies in place by the linear factor `a + b·x`, truncated to keep
    /// at most `cap` coefficients (`usize::MAX` for no truncation).
    pub fn mul_linear_in_place(&mut self, a: f64, b: f64, cap: usize) {
        if self.is_zero() {
            return;
        }
        let old_len = self.coeffs.len();
        let new_len = (old_len + 1).min(cap.max(1));
        self.coeffs.resize(new_len, 0.0);
        // Work from high to low so each original coefficient is read before
        // being overwritten.
        for i in (0..new_len).rev() {
            let lower = if i >= 1 && i - 1 < old_len {
                self.coeffs[i - 1]
            } else {
                0.0
            };
            let same = if i < old_len { self.coeffs[i] } else { 0.0 };
            self.coeffs[i] = a * same + b * lower;
        }
        self.normalize();
    }

    /// Divides in place by the linear factor `a + b·x`, assuming the division
    /// is exact over the *power series* up to the stored length (synthetic
    /// division). Requires `a != 0`.
    ///
    /// **Stability caveat:** the recurrence `qᵢ = (cᵢ − b·qᵢ₋₁)/a` amplifies
    /// rounding error by `|b/a|` per coefficient, so results are only
    /// trustworthy when `|b| ≤ |a|` or the degree is small. This is why the
    /// x-tuple ranking path (`prf-core::xtuple`) uses a division-free
    /// divide-and-conquer over its sweep timeline instead of the obvious
    /// divide-out/multiply-in update — see the regression test there.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    pub fn div_linear_in_place(&mut self, a: f64, b: f64) {
        assert!(
            a != 0.0,
            "div_linear_in_place requires a non-zero constant term"
        );
        if self.is_zero() {
            return;
        }
        // q satisfies (a + b x)·q = self  ⇒  qᵢ = (selfᵢ − b·qᵢ₋₁)/a.
        let inv_a = 1.0 / a;
        let mut prev = 0.0;
        for c in self.coeffs.iter_mut() {
            let q = (*c - b * prev) * inv_a;
            *c = q;
            prev = q;
        }
        // Exact division shrinks the degree by one; drop the (numerically
        // tiny) top coefficient when the caller multiplied without truncation.
        self.normalize();
    }

    /// Divide-and-conquer product of many polynomials (Appendix B.1).
    ///
    /// Splits the factor list so both halves have roughly equal total degree,
    /// recursing and combining with [`Poly::mul`]. Total work is
    /// `O(D log D log k)` for total degree `D` over `k` factors.
    pub fn product(mut factors: Vec<Poly>) -> Poly {
        match factors.len() {
            0 => return Poly::one(),
            1 => return factors.pop().expect("non-empty"),
            _ => {}
        }
        if factors.iter().any(|f| f.is_zero()) {
            return Poly::zero();
        }
        fn rec(fs: &mut [Poly]) -> Poly {
            if fs.len() == 1 {
                return fs[0].clone();
            }
            // Split by cumulative degree so each half is ~D/2.
            let total: usize = fs.iter().map(|f| f.coeffs.len()).sum();
            let mut acc = 0usize;
            let mut split = 1;
            for (i, f) in fs.iter().enumerate() {
                acc += f.coeffs.len();
                if acc * 2 >= total {
                    split = (i + 1).min(fs.len() - 1).max(1);
                    break;
                }
            }
            let (l, r) = fs.split_at_mut(split);
            rec(l).mul(&rec(r))
        }
        rec(&mut factors)
    }

    /// Naive sequential product of many polynomials (for benchmarking against
    /// [`Poly::product`]).
    pub fn product_sequential(factors: &[Poly]) -> Poly {
        factors.iter().fold(Poly::one(), |acc, f| acc.mul_naive(f))
    }
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}x")?,
                _ => write!(f, "{c}x^{i}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &Poly, b: &Poly, tol: f64) -> bool {
        let n = a.coeffs.len().max(b.coeffs.len());
        (0..n).all(|i| (a.coeff(i) - b.coeff(i)).abs() <= tol)
    }

    #[test]
    fn construction_normalises() {
        let p = Poly::from_coeffs(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert!(Poly::constant(0.0).is_zero());
        assert_eq!(Poly::zero().degree(), None);
    }

    #[test]
    fn eval_and_derivative() {
        let p = Poly::from_coeffs(vec![2.0, -3.0, 1.0]); // 2 - 3x + x²
        assert_eq!(p.eval(0.0), 2.0);
        assert_eq!(p.eval(2.0), 0.0);
        assert_eq!(p.derivative().coeffs(), &[-3.0, 2.0]);
        let z = p.eval_complex(Complex::new(0.0, 1.0)); // 2 - 3i + i² = 1 - 3i
        assert!(z.approx_eq(Complex::new(1.0, -3.0), 1e-12));
    }

    #[test]
    fn naive_mul() {
        let a = Poly::linear(1.0, 2.0);
        let b = Poly::linear(3.0, 1.0);
        assert_eq!(a.mul_naive(&b).coeffs(), &[3.0, 7.0, 2.0]);
        assert!(a.mul_naive(&Poly::zero()).is_zero());
    }

    #[test]
    fn fft_mul_matches_naive() {
        let a = Poly::from_coeffs((0..100).map(|i| (i as f64 * 0.37).sin()).collect());
        let b = Poly::from_coeffs((0..80).map(|i| (i as f64 * 0.11).cos()).collect());
        assert!(close(&a.mul_fft(&b), &a.mul_naive(&b), 1e-7));
    }

    #[test]
    fn truncated_mul() {
        let a = Poly::from_coeffs(vec![1.0; 10]);
        let b = Poly::from_coeffs(vec![1.0; 10]);
        let full = a.mul_naive(&b);
        let trunc = a.mul_truncated(&b, 5);
        for i in 0..5 {
            assert_eq!(full.coeff(i), trunc.coeff(i));
        }
        assert!(trunc.degree().unwrap() < 5);
    }

    #[test]
    fn linear_in_place_roundtrip() {
        let mut p = Poly::from_coeffs(vec![0.5, 0.25, -1.0, 2.0]);
        let original = p.clone();
        p.mul_linear_in_place(0.7, 0.3, usize::MAX);
        assert!(close(
            &p,
            &original.mul_naive(&Poly::linear(0.7, 0.3)),
            1e-12
        ));
        p.div_linear_in_place(0.7, 0.3);
        assert!(close(&p, &original, 1e-9));
    }

    #[test]
    fn linear_in_place_truncated() {
        let mut p = Poly::from_coeffs(vec![1.0, 1.0, 1.0]);
        p.mul_linear_in_place(1.0, 1.0, 3);
        // (1+x+x²)(1+x) = 1+2x+2x²+x³, truncated to 3 coefficients.
        assert_eq!(p.coeffs(), &[1.0, 2.0, 2.0]);
    }

    #[test]
    fn product_divide_and_conquer() {
        let factors: Vec<Poly> = (1..=6).map(|i| Poly::linear(i as f64, 1.0)).collect();
        let dc = Poly::product(factors.clone());
        let seq = Poly::product_sequential(&factors);
        assert!(close(&dc, &seq, 1e-9));
        assert_eq!(dc.degree(), Some(6));
        // Constant term = 6!, leading term = 1.
        assert!((dc.coeff(0) - 720.0).abs() < 1e-9);
        assert!((dc.coeff(6) - 1.0).abs() < 1e-9);
        assert_eq!(Poly::product(vec![]), Poly::one());
    }

    #[test]
    fn generating_function_probabilities() {
        // Example 1 of the paper: three independent tuples with p = .5,.6,.4;
        // F³(x) = (.5+.5x)(.4+.6x)(.4x) = .08x + .2x² + .12x³.
        let f = Poly::product(vec![
            Poly::linear(0.5, 0.5),
            Poly::linear(0.4, 0.6),
            Poly::linear(0.0, 0.4),
        ]);
        assert!((f.coeff(1) - 0.08).abs() < 1e-12);
        assert!((f.coeff(2) - 0.20).abs() < 1e-12);
        assert!((f.coeff(3) - 0.12).abs() < 1e-12);
        assert_eq!(f.coeff(0), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn coeffs() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-3.0f64..3.0, 0..24)
    }

    proptest! {
        #[test]
        fn fft_mul_matches_naive(a in coeffs(), b in coeffs()) {
            let pa = Poly::from_coeffs(a);
            let pb = Poly::from_coeffs(b);
            let naive = pa.mul_naive(&pb);
            let fft = pa.mul_fft(&pb);
            let n = naive.coeffs().len().max(fft.coeffs().len());
            for i in 0..n {
                prop_assert!((naive.coeff(i) - fft.coeff(i)).abs() < 1e-7);
            }
        }

        #[test]
        fn truncated_mul_is_prefix_of_full(a in coeffs(), b in coeffs(), cap in 1usize..16) {
            let pa = Poly::from_coeffs(a);
            let pb = Poly::from_coeffs(b);
            let full = pa.mul_naive(&pb);
            let trunc = pa.mul_truncated(&pb, cap);
            for i in 0..cap {
                prop_assert!((full.coeff(i) - trunc.coeff(i)).abs() < 1e-10);
            }
            prop_assert!(trunc.coeffs().len() <= cap);
        }

        #[test]
        fn linear_roundtrip_in_stable_regime(
            coeffs in coeffs(),
            a in 0.5f64..2.0,
            ratio in -1.0f64..1.0,
        ) {
            // Synthetic division is stable only for |b| ≤ |a| (see the
            // method's stability caveat); the property holds exactly there.
            let b = a * ratio;
            let original = Poly::from_coeffs(coeffs);
            let mut p = original.clone();
            p.mul_linear_in_place(a, b, usize::MAX);
            p.div_linear_in_place(a, b);
            let n = original.coeffs().len().max(p.coeffs().len());
            for i in 0..n {
                prop_assert!((original.coeff(i) - p.coeff(i)).abs() < 1e-6);
            }
        }

        #[test]
        fn product_orders_are_equal(ps in proptest::collection::vec(0.0f64..1.0, 1..12)) {
            // Generating-function use case: product of (1-p + p·x).
            let factors: Vec<Poly> = ps.iter().map(|&p| Poly::linear(1.0 - p, p)).collect();
            let dc = Poly::product(factors.clone());
            let seq = Poly::product_sequential(&factors);
            for i in 0..=ps.len() {
                prop_assert!((dc.coeff(i) - seq.coeff(i)).abs() < 1e-9);
            }
            // Coefficients of a probability generating function sum to 1.
            let total: f64 = dc.coeffs().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn eval_consistent_with_coeffs(coeffs in coeffs(), x in -1.5f64..1.5) {
            let p = Poly::from_coeffs(coeffs.clone());
            let direct: f64 = coeffs.iter().enumerate().map(|(i, c)| c * x.powi(i as i32)).sum();
            prop_assert!((p.eval(x) - direct).abs() < 1e-7);
        }
    }
}
