//! The [`GfValue`] ring abstraction.
//!
//! Theorem 1 of the paper shows that every probability the ranking algorithms
//! need is a coefficient (or an evaluation) of one generating function,
//! computed by a single bottom-up fold over the and/xor tree:
//!
//! * evaluating over `f64` gives PRFe with real `α`,
//! * over [`Complex`] gives PRFe with complex `α` (needed by
//!   the DFT-based mixtures of Section 5.1),
//! * over [`Dual`] gives first derivatives (expected ranks),
//! * over [`RankPoly`](crate::RankPoly) gives the full symbolic expansion of
//!   Algorithm 2 — optionally truncated at degree `h` for PRFω(h).
//!
//! `GfValue` is the common interface that lets the fold be written once.

use crate::complex::Complex;
use crate::dual::Dual;

/// A commutative ring with a scalar action of `f64`, as required by
/// generating-function folds.
pub trait GfValue: Clone {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds an `f64` scalar into the ring.
    fn from_scalar(c: f64) -> Self;
    /// Ring addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Ring multiplication.
    fn mul(&self, rhs: &Self) -> Self;
    /// Scalar multiplication by an `f64`.
    fn scale(&self, c: f64) -> Self;

    /// `self + c·rhs` — the ∨-node combination step, provided as one method
    /// so implementations can avoid a temporary.
    fn add_scaled(&self, rhs: &Self, c: f64) -> Self {
        self.add(&rhs.scale(c))
    }

    /// In-place `self += c·rhs`. The default allocates through
    /// [`GfValue::add_scaled`]; heap-backed rings (truncated polynomials)
    /// override with a fused coefficient loop.
    fn add_scaled_assign(&mut self, rhs: &Self, c: f64) {
        *self = self.add_scaled(rhs, c);
    }

    /// In-place `self += c·(new − old)` — the ∨-node *delta* update of the
    /// incremental generating-function evaluator, fused so polynomial
    /// implementations touch each coefficient once and allocate nothing.
    fn add_scaled_diff_assign(&mut self, new: &Self, old: &Self, c: f64) {
        let delta = new.add_scaled(old, -1.0);
        self.add_scaled_assign(&delta, c);
    }

    /// Number of heap-allocated scalar coefficients this value currently
    /// retains — the unit of the incremental evaluator's memory accounting
    /// (peak polynomial footprint). Inline scalar rings report `0`.
    fn heap_coeffs(&self) -> usize {
        0
    }
}

impl GfValue for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_scalar(c: f64) -> Self {
        c
    }
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    #[inline]
    fn scale(&self, c: f64) -> Self {
        self * c
    }
}

impl GfValue for Complex {
    #[inline]
    fn zero() -> Self {
        Complex::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex::ONE
    }
    #[inline]
    fn from_scalar(c: f64) -> Self {
        Complex::real(c)
    }
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        *self + *rhs
    }
    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        *self * *rhs
    }
    #[inline]
    fn scale(&self, c: f64) -> Self {
        *self * c
    }
}

impl GfValue for Dual {
    #[inline]
    fn zero() -> Self {
        Dual::ZERO
    }
    #[inline]
    fn one() -> Self {
        Dual::ONE
    }
    #[inline]
    fn from_scalar(c: f64) -> Self {
        Dual::constant(c)
    }
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        *self + *rhs
    }
    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        *self * *rhs
    }
    #[inline]
    fn scale(&self, c: f64) -> Self {
        *self * c
    }
}

/// A field extension of [`GfValue`] for rings that also support division —
/// required by the incremental ∧-node updates of Algorithm 3 (which replace a
/// stale child factor by dividing it out of a cached product).
pub trait GfField: GfValue {
    /// Ring division. Callers must guarantee `rhs` is non-zero; the
    /// incremental algorithms maintain zero-count bookkeeping for exactly
    /// that purpose.
    fn div(&self, rhs: &Self) -> Self;
    /// `true` when the value is *exactly* zero (and would therefore poison a
    /// multiplicative cache).
    fn is_zero(&self) -> bool;
}

impl GfField for f64 {
    #[inline]
    fn div(&self, rhs: &Self) -> Self {
        self / rhs
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl GfField for Complex {
    #[inline]
    fn div(&self, rhs: &Self) -> Self {
        *self / *rhs
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }
}

impl GfField for Dual {
    #[inline]
    fn div(&self, rhs: &Self) -> Self {
        *self / *rhs
    }
    #[inline]
    fn is_zero(&self) -> bool {
        Dual::is_zero(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_laws<T: GfValue + PartialEq + std::fmt::Debug>(a: T, b: T, c: T) {
        // Commutativity is exercised where cheap; associativity up to float
        // rounding is not asserted exactly (float add is not associative),
        // but the identities must hold exactly.
        assert_eq!(a.add(&T::zero()), a);
        assert_eq!(a.mul(&T::one()), a);
        assert_eq!(a.mul(&T::zero()), T::zero());
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        let _ = c;
    }

    #[test]
    fn f64_ring() {
        ring_laws(2.0f64, -3.5, 0.25);
        assert_eq!(2.0f64.add_scaled(&4.0, 0.5), 4.0);
    }

    #[test]
    fn complex_ring() {
        ring_laws(
            Complex::new(1.0, 2.0),
            Complex::new(-0.5, 0.25),
            Complex::new(0.0, 1.0),
        );
    }

    #[test]
    fn dual_ring() {
        ring_laws(
            Dual::new(1.0, 2.0),
            Dual::new(-0.5, 0.25),
            Dual::new(0.0, 1.0),
        );
    }

    #[test]
    fn field_division() {
        let a = Complex::new(3.0, -1.0);
        let b = Complex::new(0.5, 2.0);
        assert!(a.div(&b).mul(&b).approx_eq(a, 1e-12));
        assert!(Complex::ZERO.is_zero());
        assert!(!b.is_zero());
    }
}
