//! The truncated bivariate generating function `F(x, y) = A(x) + B(x)·y`.
//!
//! Section 4.2 of the paper computes, for each tuple `t`, a generating
//! function over two variables: `x` marks tuples ranked above `t` and `y`
//! marks `t` itself. Because exactly one leaf carries the `y` label, every
//! generating function arising from an and/xor tree has `y`-degree at most
//! one, so it is fully described by the pair of univariate polynomials
//! `(A, B)`. The coefficient of `x^{j-1}` in `B` is `Pr(r(t) = j)`
//! (Theorem 1).
//!
//! [`RankPoly`] implements the ring operations needed by the bottom-up tree
//! fold, with an optional degree cap that truncates `x`-degrees `≥ cap` —
//! exactly the coefficients PRFω(h) never reads — turning the `O(n²)`
//! expansion into `O(n·h)` per tuple.
//!
//! The ∧-node product `(A₁+B₁y)(A₂+B₂y)` formally produces a `B₁B₂y²` term;
//! it is identically zero because the single `y` leaf lies in at most one
//! factor's subtree, so the product drops it. (Debug builds assert that one
//! of the `B` factors is zero.)

use crate::poly::Poly;
use crate::ring::GfValue;

/// A truncated bivariate polynomial `A(x) + B(x)·y` with shared degree cap.
///
/// The cap is carried in the value so that [`GfValue`]'s nullary
/// constructors (`zero`/`one`) can produce compatible values; `usize::MAX`
/// means "no truncation". Binary operations take the smaller cap of their
/// operands.
#[derive(Clone, Debug, PartialEq)]
pub struct RankPoly {
    /// The `y⁰` part.
    pub a: Poly,
    /// The `y¹` part.
    pub b: Poly,
    /// Number of `x` coefficients retained (`usize::MAX` = untruncated).
    pub cap: usize,
}

impl RankPoly {
    /// The zero polynomial with no truncation.
    pub fn zero() -> Self {
        RankPoly {
            a: Poly::zero(),
            b: Poly::zero(),
            cap: usize::MAX,
        }
    }

    /// The constant `1`.
    pub fn one() -> Self {
        RankPoly {
            a: Poly::one(),
            b: Poly::zero(),
            cap: usize::MAX,
        }
    }

    /// A constant `c` (pure `A` part).
    pub fn constant(c: f64) -> Self {
        RankPoly {
            a: Poly::constant(c),
            b: Poly::zero(),
            cap: usize::MAX,
        }
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        RankPoly {
            a: Poly::linear(0.0, 1.0),
            b: Poly::zero(),
            cap: usize::MAX,
        }
    }

    /// The monomial `y`.
    pub fn y() -> Self {
        RankPoly {
            a: Poly::zero(),
            b: Poly::one(),
            cap: usize::MAX,
        }
    }

    /// Applies a degree cap, truncating existing coefficients if needed.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self.truncate();
        self
    }

    fn truncate(&mut self) {
        if self.cap == usize::MAX {
            return;
        }
        if self.a.coeffs().len() > self.cap {
            self.a = Poly::from_coeffs(self.a.coeffs()[..self.cap].to_vec());
        }
        if self.b.coeffs().len() > self.cap {
            self.b = Poly::from_coeffs(self.b.coeffs()[..self.cap].to_vec());
        }
    }

    /// `Pr(r(t) = j)` is the coefficient of `x^{j-1}·y`; ranks are 1-based.
    pub fn rank_probability(&self, j: usize) -> f64 {
        if j == 0 {
            return 0.0;
        }
        self.b.coeff(j - 1)
    }

    /// The rank distribution `Pr(r(t) = j)` for `j = 1..=len`, where `len` is
    /// the stored length of `B` (longer requests read zeros).
    pub fn rank_distribution(&self, n: usize) -> Vec<f64> {
        (1..=n).map(|j| self.rank_probability(j)).collect()
    }

    /// Evaluates at numeric `x`, `y`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        self.a.eval(x) + self.b.eval(x) * y
    }
}

impl GfValue for RankPoly {
    fn zero() -> Self {
        RankPoly::zero()
    }

    fn one() -> Self {
        RankPoly::one()
    }

    fn from_scalar(c: f64) -> Self {
        RankPoly::constant(c)
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = RankPoly {
            a: self.a.add(&rhs.a),
            b: self.b.add(&rhs.b),
            cap: self.cap.min(rhs.cap),
        };
        out.truncate();
        out
    }

    fn mul(&self, rhs: &Self) -> Self {
        let cap = self.cap.min(rhs.cap);
        debug_assert!(
            self.b.is_zero() || rhs.b.is_zero(),
            "RankPoly product would create a y² term: the y label must mark a single leaf"
        );
        let (a, b) = if cap == usize::MAX {
            (
                self.a.mul(&rhs.a),
                self.a.mul(&rhs.b).add(&self.b.mul(&rhs.a)),
            )
        } else {
            (
                self.a.mul_truncated(&rhs.a, cap),
                self.a
                    .mul_truncated(&rhs.b, cap)
                    .add(&self.b.mul_truncated(&rhs.a, cap)),
            )
        };
        RankPoly { a, b, cap }
    }

    fn scale(&self, c: f64) -> Self {
        RankPoly {
            a: self.a.scale(c),
            b: self.b.scale(c),
            cap: self.cap,
        }
    }

    fn add_scaled(&self, rhs: &Self, c: f64) -> Self {
        let mut out = RankPoly {
            a: self.a.add_scaled(&rhs.a, c),
            b: self.b.add_scaled(&rhs.b, c),
            cap: self.cap.min(rhs.cap),
        };
        out.truncate();
        out
    }

    fn add_scaled_assign(&mut self, rhs: &Self, c: f64) {
        self.cap = self.cap.min(rhs.cap);
        let zero = Poly::zero();
        self.a.add_scaled_diff_in_place(&rhs.a, &zero, c, self.cap);
        self.b.add_scaled_diff_in_place(&rhs.b, &zero, c, self.cap);
    }

    fn add_scaled_diff_assign(&mut self, new: &Self, old: &Self, c: f64) {
        self.cap = self.cap.min(new.cap).min(old.cap);
        self.a.add_scaled_diff_in_place(&new.a, &old.a, c, self.cap);
        self.b.add_scaled_diff_in_place(&new.b, &old.b, c, self.cap);
    }

    fn heap_coeffs(&self) -> usize {
        self.a.coeffs().len() + self.b.coeffs().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomials() {
        let x = RankPoly::x();
        let y = RankPoly::y();
        assert_eq!(x.a.coeffs(), &[0.0, 1.0]);
        assert!(x.b.is_zero());
        assert!(y.a.is_zero());
        assert_eq!(y.b.coeffs(), &[1.0]);
    }

    #[test]
    fn product_tracks_y_degree() {
        // (0.6 + 0.4x)(0.4x + 0.6y)·x from Example 4's structure.
        let f1 = RankPoly {
            a: Poly::linear(0.6, 0.4),
            b: Poly::zero(),
            cap: usize::MAX,
        };
        let f2 = RankPoly {
            a: Poly::linear(0.0, 0.4),
            b: Poly::constant(0.6),
            cap: usize::MAX,
        };
        let x = RankPoly::x();
        let p = f1.mul(&f2).mul(&x);
        // A = (0.6+0.4x)(0.4x)(x) = 0.24x² + 0.16x³
        assert!((p.a.coeff(2) - 0.24).abs() < 1e-12);
        assert!((p.a.coeff(3) - 0.16).abs() < 1e-12);
        // B = (0.6+0.4x)(0.6)(x) = 0.36x + 0.24x²
        assert!((p.b.coeff(1) - 0.36).abs() < 1e-12);
        assert!((p.b.coeff(2) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn rank_probability_reads_b() {
        let p = RankPoly {
            a: Poly::zero(),
            b: Poly::from_coeffs(vec![0.1, 0.3, 0.6]),
            cap: usize::MAX,
        };
        assert_eq!(p.rank_probability(1), 0.1);
        assert_eq!(p.rank_probability(2), 0.3);
        assert_eq!(p.rank_probability(3), 0.6);
        assert_eq!(p.rank_probability(4), 0.0);
        assert_eq!(p.rank_probability(0), 0.0);
        assert_eq!(p.rank_distribution(4), vec![0.1, 0.3, 0.6, 0.0]);
    }

    #[test]
    fn truncation_caps_growth() {
        let factor = RankPoly {
            a: Poly::linear(0.5, 0.5),
            b: Poly::zero(),
            cap: usize::MAX,
        };
        let mut acc = RankPoly::one().with_cap(3);
        for _ in 0..10 {
            acc = acc.mul(&factor);
        }
        assert!(acc.a.coeffs().len() <= 3);
        // Coefficients must match the untruncated product's low coefficients.
        let mut full = Poly::one();
        for _ in 0..10 {
            full = full.mul_naive(&Poly::linear(0.5, 0.5));
        }
        for i in 0..3 {
            assert!((acc.a.coeff(i) - full.coeff(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn add_scaled_combines_both_parts() {
        let p = RankPoly {
            a: Poly::constant(1.0),
            b: Poly::constant(2.0),
            cap: usize::MAX,
        };
        let q = RankPoly {
            a: Poly::linear(0.0, 1.0),
            b: Poly::constant(1.0),
            cap: usize::MAX,
        };
        let r = p.add_scaled(&q, 0.5);
        assert_eq!(r.a.coeffs(), &[1.0, 0.5]);
        assert_eq!(r.b.coeffs(), &[2.5]);
        assert!((r.eval(2.0, 1.0) - (1.0 + 0.5 * 2.0 + 2.5)).abs() < 1e-12);
    }
}
