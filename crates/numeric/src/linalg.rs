//! Small dense complex linear systems.
//!
//! Used by the least-squares refinement of the PRFe-mixture approximation:
//! the normal equations over `L ≤ ~100` selected frequencies form a small
//! dense Hermitian system, solved here by Gaussian elimination with partial
//! pivoting. (Appendix B.2 of the paper also discusses Vandermonde systems;
//! the roots-of-unity structure lets the FFT replace a general solver there,
//! so this module intentionally stays minimal.)

use crate::complex::Complex;

/// Solves `A·x = b` for square complex `A` by Gaussian elimination with
/// partial pivoting. Returns `None` when the matrix is (numerically)
/// singular.
///
/// `a` is row-major and consumed; `O(n³)`.
pub fn solve_complex(mut a: Vec<Vec<Complex>>, mut b: Vec<Complex>) -> Option<Vec<Complex>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector dimension mismatch");
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("finite pivots")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor.abs() == 0.0 {
                continue;
            }
            // Split the borrow: the pivot row is disjoint from `row`.
            let (pivot_rows, rest) = a.split_at_mut(col + 1);
            let pivot_row = &pivot_rows[col];
            let target = &mut rest[row - col - 1];
            for (t, &p) in target[col..].iter_mut().zip(&pivot_row[col..]) {
                *t -= factor * p;
            }
            let sub = factor * b[col];
            b[row] -= sub;
        }
    }
    // Back substitution.
    let mut x = vec![Complex::ZERO; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays
mod tests {
    use super::*;

    #[test]
    fn solves_small_real_system() {
        // [2 1; 1 3]·x = [5; 10] → x = [1; 3].
        let a = vec![
            vec![Complex::real(2.0), Complex::real(1.0)],
            vec![Complex::real(1.0), Complex::real(3.0)],
        ];
        let b = vec![Complex::real(5.0), Complex::real(10.0)];
        let x = solve_complex(a, b).unwrap();
        assert!(x[0].approx_eq(Complex::real(1.0), 1e-12));
        assert!(x[1].approx_eq(Complex::real(3.0), 1e-12));
    }

    #[test]
    fn solves_complex_system() {
        let i = Complex::I;
        let a = vec![vec![Complex::ONE, i], vec![i, Complex::ONE]];
        // x = [1, -i] ⇒ b = [1 + i·(-i), i·1 + (-i)] = [2, 0].
        let b = vec![Complex::real(2.0), Complex::ZERO];
        let x = solve_complex(a, b).unwrap();
        assert!(x[0].approx_eq(Complex::ONE, 1e-12));
        assert!(x[1].approx_eq(-i, 1e-12));
    }

    #[test]
    fn roundtrip_random_system() {
        // Deterministic pseudo-random 8×8 system: verify A·x ≈ b.
        let n = 8;
        let mut state = 1u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<Vec<Complex>> = (0..n)
            .map(|_| (0..n).map(|_| Complex::new(next(), next())).collect())
            .collect();
        let b: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let x = solve_complex(a.clone(), b.clone()).unwrap();
        for r in 0..n {
            let mut acc = Complex::ZERO;
            for c in 0..n {
                acc += a[r][c] * x[c];
            }
            assert!(acc.approx_eq(b[r], 1e-9), "row {r}");
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = vec![
            vec![Complex::real(1.0), Complex::real(2.0)],
            vec![Complex::real(2.0), Complex::real(4.0)],
        ];
        let b = vec![Complex::real(1.0), Complex::real(2.0)];
        assert!(solve_complex(a, b).is_none());
    }
}
