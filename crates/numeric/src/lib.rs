//! Numeric substrate for the `prf` workspace.
//!
//! The ranking algorithms of Li, Saha & Deshpande (VLDB 2009) are built on
//! *generating functions*: polynomials whose coefficients are probabilities of
//! events over possible worlds. Evaluating, expanding, multiplying and
//! interpolating those polynomials — over real, complex and dual-number
//! scalars — is what this crate provides:
//!
//! * [`Complex`] — complex arithmetic (PRFe permits complex `α`, and the
//!   DFT-based approximation of Section 5.1 requires it),
//! * [`Dual`] — forward-mode dual numbers, used to evaluate first derivatives
//!   of generating functions (expected ranks on and/xor trees),
//! * [`fft`] — radix-2 FFT / inverse FFT and naive DFT,
//! * [`poly`] — dense univariate polynomials with naive, divide-and-conquer
//!   and FFT-based products (Appendix B.1 of the paper),
//! * [`rankpoly`] — the truncated bivariate form `F(x, y) = A(x) + B(x)·y`
//!   used by the and/xor-tree expansion algorithms (Section 4.2),
//! * [`ring`] — the [`ring::GfValue`] abstraction that lets one generating-
//!   function evaluator serve all scalar types above.

#![deny(missing_docs)]

pub mod complex;
pub mod dual;
pub mod fft;
pub mod linalg;
pub mod poly;
pub mod rankpoly;
pub mod ring;
pub mod scaled;
pub mod ylin;

pub use complex::Complex;
pub use dual::Dual;
pub use poly::Poly;
pub use rankpoly::RankPoly;
pub use ring::{GfField, GfValue};
pub use scaled::Scaled;
pub use ylin::YLin;

/// Default absolute tolerance used by approximate comparisons in tests and
/// invariant checks throughout the workspace.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
