//! Scaled floating point: values of the form `m · 2^e` with `m` an `f64` (or
//! [`Complex`]) mantissa and `e` an explicit `i64` exponent.
//!
//! PRFe values are products of up to `n` factors in `(0, 1]`; at paper scale
//! (`n = 10⁵`, `α = 0.95`) the true value is around `e^{-2500}`, far below
//! the smallest positive `f64`. A plain-float implementation silently
//! underflows to zero — harmless for a one-shot evaluation of the *top*
//! tuples, but fatal for the incremental ∧-node caches of Algorithm 3, which
//! divide stale factors back out of a running product: once the product
//! underflows it can never recover.
//!
//! [`Scaled`] keeps the mantissa within `2^{±512}` of 1 by shifting powers of
//! two into the exponent, so products of millions of probability factors stay
//! exact to `f64` relative precision. Ranking keys come out in log₂ space via
//! [`Scaled::log2_magnitude`] / [`Scaled::signed_log_key`].

use crate::complex::Complex;
use crate::ring::{GfField, GfValue};

/// Chunk by which mantissas are renormalised (2^512 is exactly
/// representable, and far from both f64 overflow and underflow).
const CHUNK: i64 = 512;
const CHUNK_UP: f64 = 1.3407807929942597e154; // 2^512
const CHUNK_DOWN: f64 = 7.458340731200207e-155; // 2^-512
/// Exponent gap beyond which the smaller addend cannot affect the sum.
const ADD_CUTOFF: i64 = 128;

/// Magnitude proxy used for normalisation decisions. Implemented for `f64`
/// and [`Complex`]; not intended for implementation outside this crate.
pub trait Mantissa: GfValue + Copy {
    /// Magnitude (absolute value / modulus) of the mantissa.
    fn mag(self) -> f64;
    /// Multiplies by `2^(CHUNK · chunks_up)` exactly.
    fn mul_pow2(self, chunks_up: i64) -> Self;
    /// Whether the value is exactly zero (no renormalisation possible).
    fn is_exact_zero(self) -> bool;
}

impl Mantissa for f64 {
    #[inline]
    fn mag(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn mul_pow2(self, chunks: i64) -> Self {
        match chunks.cmp(&0) {
            std::cmp::Ordering::Greater => {
                let mut v = self;
                for _ in 0..chunks {
                    v *= CHUNK_UP;
                }
                v
            }
            std::cmp::Ordering::Less => {
                let mut v = self;
                for _ in 0..-chunks {
                    v *= CHUNK_DOWN;
                }
                v
            }
            std::cmp::Ordering::Equal => self,
        }
    }
    #[inline]
    fn is_exact_zero(self) -> bool {
        self == 0.0
    }
}

impl Mantissa for Complex {
    #[inline]
    fn mag(self) -> f64 {
        self.re.abs().max(self.im.abs())
    }
    #[inline]
    fn mul_pow2(self, chunks: i64) -> Self {
        Complex::new(self.re.mul_pow2(chunks), self.im.mul_pow2(chunks))
    }
    #[inline]
    fn is_exact_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }
}

/// A number `mantissa · 2^{CHUNK·exp_chunks}` with the mantissa held near 1.
///
/// The exponent is stored in units of 2^512 chunks; all arithmetic
/// renormalises eagerly so mantissas never overflow or underflow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scaled<T> {
    /// Mantissa, kept within `[2^-512, 2^512]` in magnitude (or exactly 0).
    pub mantissa: T,
    /// Exponent in chunks of 2^512.
    pub exp: i64,
}

impl<T: Mantissa> Scaled<T> {
    /// Wraps a plain value.
    pub fn new(value: T) -> Self {
        let mut s = Scaled {
            mantissa: value,
            exp: 0,
        };
        s.normalize();
        s
    }

    fn normalize(&mut self) {
        if self.mantissa.is_exact_zero() {
            self.exp = 0;
            return;
        }
        let mut m = self.mantissa.mag();
        while m >= CHUNK_UP {
            self.mantissa = self.mantissa.mul_pow2(-1);
            self.exp += 1;
            m = self.mantissa.mag();
        }
        while m < CHUNK_DOWN {
            self.mantissa = self.mantissa.mul_pow2(1);
            self.exp -= 1;
            m = self.mantissa.mag();
        }
    }

    /// `log₂` of the magnitude; `f64::NEG_INFINITY` for zero. A monotone
    /// ranking key for magnitude ordering that never under/overflows.
    pub fn log2_magnitude(&self) -> f64 {
        if self.mantissa.is_exact_zero() {
            f64::NEG_INFINITY
        } else {
            self.mantissa.mag().log2() + (self.exp * CHUNK) as f64
        }
    }

    /// Lossy conversion back to the plain value (may under/overflow — only
    /// meaningful when the exponent is small).
    pub fn to_plain(&self) -> T {
        self.mantissa.mul_pow2(self.exp)
    }
}

/// A totally ordered key for comparing *signed* scaled values without ever
/// materialising them: compares by sign class first, then by (sign-adjusted)
/// log₂ magnitude. Derived `PartialOrd` is lexicographic, which is exactly
/// the required order.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct SignedLogKey {
    /// `-1`, `0` or `1`.
    pub sign: i8,
    /// `log₂|v|` for positive values, `−log₂|v|` for negative values
    /// (so that within each sign class larger keys mean larger values),
    /// `0` for zero.
    pub log: f64,
}

impl SignedLogKey {
    /// A strictly monotone, *bounded* `f64` projection of the key, suitable
    /// for display and reporting (e.g. `Ranking::key_at`): it preserves the
    /// key's total order across all three sign classes — negatives land in
    /// `(−3, −1)`, zero at `0`, positives in `(1, 3)` — but is **not** a
    /// magnitude; the underlying value may be far outside `f64` range.
    ///
    /// (A naive `sign · log` projection is wrong: for negatives `log` is
    /// already `−log₂|v|`, so the product collapses both signs onto
    /// `log₂|v|`.)
    pub fn display(self) -> f64 {
        // x ↦ x/(1+|x|) squashes ℝ monotonically into (−1, 1).
        let squash = self.log / (1.0 + self.log.abs());
        match self.sign.cmp(&0) {
            std::cmp::Ordering::Greater => 2.0 + squash,
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Less => -2.0 + squash,
        }
    }
}

impl Scaled<f64> {
    /// A strictly monotone key for ordering by *signed* value across the full
    /// scaled range: positive values compare above zero, larger magnitudes
    /// compare further from zero, negatives mirror.
    pub fn signed_log_key(&self) -> SignedLogKey {
        if self.mantissa == 0.0 {
            return SignedLogKey { sign: 0, log: 0.0 };
        }
        let l = self.log2_magnitude();
        if self.mantissa > 0.0 {
            SignedLogKey { sign: 1, log: l }
        } else {
            SignedLogKey { sign: -1, log: -l }
        }
    }
}

impl Scaled<Complex> {
    /// The signed-log key of the real part (ranking key for PRFe mixtures).
    pub fn real_part_key(&self) -> SignedLogKey {
        Scaled {
            mantissa: self.mantissa.re,
            exp: self.exp,
        }
        .signed_log_key()
    }

    /// The log₂-magnitude key (ranking key for `|Υ|` ordering).
    pub fn magnitude_key(&self) -> f64 {
        if self.mantissa.is_zero() {
            f64::NEG_INFINITY
        } else {
            // Use the true modulus for the key (mag() is the ∞-norm, fine
            // for normalisation but not a ranking key).
            self.mantissa.abs().log2() + (self.exp * CHUNK) as f64
        }
    }
}

impl<T: Mantissa> GfValue for Scaled<T> {
    fn zero() -> Self {
        Scaled {
            mantissa: T::zero(),
            exp: 0,
        }
    }

    fn one() -> Self {
        Scaled {
            mantissa: T::one(),
            exp: 0,
        }
    }

    fn from_scalar(c: f64) -> Self {
        Scaled::new(T::from_scalar(c))
    }

    fn add(&self, rhs: &Self) -> Self {
        if self.mantissa.is_exact_zero() {
            return *rhs;
        }
        if rhs.mantissa.is_exact_zero() {
            return *self;
        }
        // Align to the larger exponent; a gap beyond ADD_CUTOFF chunks means
        // the smaller addend is below one ulp of the larger.
        let (big, small) = if self.exp >= rhs.exp {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let gap = big.exp - small.exp;
        if gap > ADD_CUTOFF {
            return *big;
        }
        let mut out = Scaled {
            mantissa: big.mantissa.add(&small.mantissa.mul_pow2(-gap)),
            exp: big.exp,
        };
        out.normalize();
        out
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut out = Scaled {
            mantissa: self.mantissa.mul(&rhs.mantissa),
            exp: self.exp + rhs.exp,
        };
        out.normalize();
        if out.mantissa.is_exact_zero() {
            out.exp = 0;
        }
        out
    }

    fn scale(&self, c: f64) -> Self {
        let mut out = Scaled {
            mantissa: self.mantissa.scale(c),
            exp: self.exp,
        };
        out.normalize();
        out
    }
}

impl GfField for Scaled<f64> {
    fn div(&self, rhs: &Self) -> Self {
        let mut out = Scaled {
            mantissa: self.mantissa / rhs.mantissa,
            exp: self.exp - rhs.exp,
        };
        out.normalize();
        out
    }
    fn is_zero(&self) -> bool {
        self.mantissa == 0.0
    }
}

impl GfField for Scaled<Complex> {
    fn div(&self, rhs: &Self) -> Self {
        let mut out = Scaled {
            mantissa: self.mantissa / rhs.mantissa,
            exp: self.exp - rhs.exp,
        };
        out.normalize();
        out
    }
    fn is_zero(&self) -> bool {
        self.mantissa.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representable_roundtrip() {
        let x = Scaled::new(0.375f64);
        assert_eq!(x.to_plain(), 0.375);
        assert!((x.log2_magnitude() - 0.375f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn deep_product_does_not_underflow() {
        // 0.5^100000: log2 = -100000 — far below f64 range.
        let half = Scaled::new(0.5f64);
        let mut p = Scaled::one();
        for _ in 0..100_000 {
            p = p.mul(&half);
        }
        assert!((p.log2_magnitude() + 100_000.0).abs() < 1e-6);
        // Dividing back recovers 1.
        for _ in 0..100_000 {
            p = p.div(&half);
        }
        assert!((p.to_plain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn addition_with_aligned_exponents() {
        let a = Scaled::new(3.0f64);
        let b = Scaled::new(4.0f64);
        assert!((a.add(&b).to_plain() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn addition_across_magnitudes_keeps_dominant() {
        let mut big = Scaled::one();
        for _ in 0..1000 {
            big = big.mul(&Scaled::new(2.0f64));
        }
        let small = Scaled::new(1.0f64);
        let sum = big.add(&small);
        assert!((sum.log2_magnitude() - 1000.0).abs() < 1e-9);
        // Symmetric argument order.
        let sum2 = small.add(&big);
        assert!((sum2.log2_magnitude() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn signed_log_key_orders_values() {
        let values = [-8.0f64, -0.25, 0.0, 1e-200, 3.0, 1e200];
        let keys: Vec<SignedLogKey> = values
            .iter()
            .map(|&v| Scaled::new(v).signed_log_key())
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
        // Fine distinctions survive (this is why the key is a pair, not a
        // single biased f64).
        let a = Scaled::new(-8.0f64).signed_log_key();
        let b = Scaled::new(-8.000001f64).signed_log_key();
        assert!(b < a);
    }

    #[test]
    fn display_projection_is_monotone_and_bounded() {
        let values = [-1e200f64, -8.0, -0.25, 0.0, 1e-200, 0.25, 3.0, 1e200];
        let displays: Vec<f64> = values
            .iter()
            .map(|&v| Scaled::new(v).signed_log_key().display())
            .collect();
        for w in displays.windows(2) {
            assert!(w[0] < w[1], "{w:?} must be strictly increasing");
        }
        for d in &displays {
            assert!(d.is_finite() && d.abs() < 3.0);
        }
        // The naive sign·log projection would collapse ±x onto one value;
        // display keeps them apart and on the right sides of zero.
        let neg = Scaled::new(-0.25f64).signed_log_key().display();
        let pos = Scaled::new(0.25f64).signed_log_key().display();
        assert!(neg < 0.0 && pos > 0.0 && neg != pos);
    }

    #[test]
    fn complex_scaled_product() {
        let z = Scaled::new(Complex::new(0.6, 0.3));
        let mut p = Scaled::<Complex>::one();
        for _ in 0..10_000 {
            p = p.mul(&z);
        }
        // |z| = sqrt(0.45); log2|p| = 10000·log2|z|.
        let expect = 10_000.0 * 0.45f64.sqrt().log2();
        // log2_magnitude uses max(|re|,|im|), within 0.5 bit of the true
        // modulus.
        assert!((p.log2_magnitude() - expect).abs() < 1.0);
        assert!(!p.is_zero());
    }

    #[test]
    fn zero_propagates() {
        let z = Scaled::<f64>::zero();
        assert!(z.is_zero());
        assert_eq!(z.log2_magnitude(), f64::NEG_INFINITY);
        let one = Scaled::<f64>::one();
        assert!(z.mul(&one).is_zero());
        assert!((z.add(&one).to_plain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gf_ring_consistency_with_plain() {
        // Random-ish expression evaluated both ways.
        let xs = [0.3f64, 1.7, 0.9, 0.01];
        let mut plain = 1.0f64;
        let mut scaled = Scaled::<f64>::one();
        for &x in &xs {
            plain = plain * x + 0.5;
            scaled = scaled.mul(&Scaled::new(x)).add(&Scaled::from_scalar(0.5));
        }
        assert!((scaled.to_plain() - plain).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn agrees_with_plain_f64_in_range(
            xs in proptest::collection::vec(-4.0f64..4.0, 1..20)
        ) {
            // Random +,× expression chains stay representable: compare.
            let mut plain = 1.0f64;
            let mut scaled = Scaled::<f64>::one();
            for &x in &xs {
                if x > 0.0 {
                    plain *= x;
                    scaled = scaled.mul(&Scaled::new(x));
                } else {
                    plain += x;
                    scaled = scaled.add(&Scaled::new(x));
                }
            }
            prop_assert!((scaled.to_plain() - plain).abs() <= 1e-9 * plain.abs().max(1.0));
        }

        #[test]
        fn log_key_monotone(a in -1e3f64..1e3, b in -1e3f64..1e3) {
            let ka = Scaled::new(a).signed_log_key();
            let kb = Scaled::new(b).signed_log_key();
            if a < b {
                prop_assert!(ka <= kb, "{a} vs {b}");
            }
            if (a - b).abs() > 1e-9 {
                prop_assert!((ka < kb) == (a < b));
            }
        }

        #[test]
        fn mul_div_roundtrip(a in 0.01f64..100.0, chain in proptest::collection::vec(0.01f64..0.99, 1..200)) {
            let mut v = Scaled::new(a);
            for &f in &chain {
                v = v.mul(&Scaled::new(f));
            }
            for &f in &chain {
                v = v.div(&Scaled::new(f));
            }
            prop_assert!((v.to_plain() - a).abs() < 1e-9 * a);
        }
    }
}
