//! Uncertain Rank-k — U-Rank (Soliman et al., ICDE 2007).
//!
//! At each rank `i ∈ 1..=k`, return the tuple maximising `Pr(r(t) = i)`.
//! The original definition may repeat one tuple at several positions (the
//! paper observes a tuple spanning positions 67 895–100 000 on one dataset);
//! following Section 3.2 we enforce distinct tuples greedily: position `i`
//! takes the highest-probability tuple not already chosen.
//!
//! The positional probabilities are PRF special cases (`ω(i) = δ(i = j)`),
//! computed for all `j ≤ k` at once from the truncated prefix polynomial —
//! `O(n·k + n log n)` for independent tuples, matching Yi et al.'s bound.
//! Memory is `O(k²)`: per position only the `k` best candidates can ever be
//! selected, so each position keeps a bounded best-list.

use prf_numeric::Poly;
use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

/// Per-position bounded candidate lists: `candidates[j]` holds up to
/// `cap` `(probability, tuple)` pairs with the largest probabilities for
/// position `j+1`.
struct CandidateTable {
    cap: usize,
    candidates: Vec<Vec<(f64, TupleId)>>,
}

impl CandidateTable {
    fn new(k: usize) -> Self {
        CandidateTable {
            cap: k,
            candidates: vec![Vec::with_capacity(k + 1); k],
        }
    }

    fn push(&mut self, position: usize, prob: f64, t: TupleId) {
        if prob <= 0.0 {
            return;
        }
        let list = &mut self.candidates[position];
        // Insertion sort into a short descending list.
        let at = list
            .iter()
            .position(|&(p, tid)| (prob, std::cmp::Reverse(t)) > (p, std::cmp::Reverse(tid)))
            .unwrap_or(list.len());
        if at < self.cap {
            list.insert(at, (prob, t));
            list.truncate(self.cap);
        }
    }

    /// Greedy distinct selection: for each position in order, the best
    /// not-yet-used candidate.
    fn select_distinct(&self) -> Vec<TupleId> {
        let mut chosen: Vec<TupleId> = Vec::with_capacity(self.candidates.len());
        for list in &self.candidates {
            if let Some(&(_, t)) = list.iter().find(|&&(_, t)| !chosen.contains(&t)) {
                chosen.push(t);
            }
        }
        chosen
    }

    /// The raw per-position argmax (allowing duplicates) — the original
    /// U-Rank semantics.
    fn select_with_duplicates(&self) -> Vec<Option<TupleId>> {
        self.candidates
            .iter()
            .map(|l| l.first().map(|&(_, t)| t))
            .collect()
    }
}

fn candidate_table(db: &IndependentDb, k: usize) -> CandidateTable {
    let mut table = CandidateTable::new(k);
    let order = sort_indices_by_score_desc(&db.scores());
    let mut g = Poly::one();
    for idx in order {
        let t = db.tuple(TupleId(idx as u32));
        for (m, &c) in g.coeffs().iter().enumerate().take(k) {
            table.push(m, c * t.prob, t.id);
        }
        g.mul_linear_in_place(1.0 - t.prob, t.prob, k);
    }
    table
}

/// The distinct-enforced U-Rank top-k answer on an independent relation.
pub fn urank_topk(db: &IndependentDb, k: usize) -> Vec<TupleId> {
    candidate_table(db, k).select_distinct()
}

/// The original U-Rank answer, which may contain duplicates (`None` when no
/// tuple has positive probability at a position).
pub fn urank_topk_with_duplicates(db: &IndependentDb, k: usize) -> Vec<Option<TupleId>> {
    candidate_table(db, k).select_with_duplicates()
}

/// U-Rank on an and/xor tree (distinct-enforced): computes
/// `Pr(r(t) = j), j ≤ k` for every tuple via the truncated tree expansion
/// (or the x-tuple fast path) and then selects greedily.
pub fn urank_topk_tree(tree: &AndXorTree, k: usize) -> Vec<TupleId> {
    use prf_core::weights::PositionWeight;
    let n = tree.n_tuples();
    let mut table = CandidateTable::new(k);
    // One truncated pass per position j would redo work; instead reuse the
    // rank-distribution machinery once per tuple via the step-cap expansion.
    // For x-tuple trees, run the O(n·k) fast path k times (still O(n·k²)
    // worst case but with tiny constants); otherwise expand each tuple once.
    if tree.x_tuple_groups().is_some() {
        for j in 1..=k {
            let w = PositionWeight { j };
            let vals =
                prf_core::xtuple::prf_omega_rank_xtuple(tree, &w).expect("x-tuple form checked");
            for (t, v) in vals.iter().enumerate() {
                table.push(j - 1, v.re, TupleId(t as u32));
            }
        }
    } else {
        let (order, pos) = tree_order(tree);
        for (i, &t) in order.iter().enumerate() {
            let gf = tree.generating_function(|u| {
                if u == t {
                    prf_numeric::RankPoly::y().with_cap(k)
                } else if pos[u.index()] < i {
                    prf_numeric::RankPoly::x().with_cap(k)
                } else {
                    prf_numeric::RankPoly::one().with_cap(k)
                }
            });
            for j in 1..=k.min(n) {
                table.push(j - 1, gf.rank_probability(j), t);
            }
        }
    }
    table.select_distinct()
}

fn tree_order(tree: &AndXorTree) -> (Vec<TupleId>, Vec<usize>) {
    let order: Vec<TupleId> = sort_indices_by_score_desc(tree.scores())
        .into_iter()
        .map(|i| TupleId(i as u32))
        .collect();
    let mut pos = vec![0usize; order.len()];
    for (i, t) in order.iter().enumerate() {
        pos[t.index()] = i;
    }
    (order, pos)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays
mod tests {
    use super::*;

    /// Brute-force U-Rank from the full distribution matrix.
    fn brute_urank(db: &IndependentDb, k: usize, distinct: bool) -> Vec<Option<TupleId>> {
        let d = prf_core::independent::rank_distributions(db);
        let mut chosen: Vec<Option<TupleId>> = Vec::new();
        for j in 0..k {
            let mut best: Option<(f64, TupleId)> = None;
            for t in 0..db.len() {
                let tid = TupleId(t as u32);
                if distinct && chosen.iter().flatten().any(|&c| c == tid) {
                    continue;
                }
                let p = d[t][j];
                if p > 0.0 {
                    best = match best {
                        Some((bp, bt))
                            if (bp, std::cmp::Reverse(bt)) >= (p, std::cmp::Reverse(tid)) =>
                        {
                            Some((bp, bt))
                        }
                        _ => Some((p, tid)),
                    };
                }
            }
            chosen.push(best.map(|(_, t)| t));
        }
        chosen
    }

    fn db() -> IndependentDb {
        IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
            (5.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn distinct_matches_brute_force() {
        let db = db();
        for k in 1..=5 {
            let got = urank_topk(&db, k);
            let want: Vec<TupleId> = brute_urank(&db, k, true).into_iter().flatten().collect();
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn duplicates_form_matches_brute_force() {
        let db = db();
        let got = urank_topk_with_duplicates(&db, 4);
        let want = brute_urank(&db, 4, false);
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_pathology_exists() {
        // A dominant-probability tuple can win several positions in the
        // original semantics — the pathology Section 3.2 reports.
        let db = IndependentDb::from_pairs([(10.0, 0.05), (9.0, 0.05), (8.0, 0.999)]).unwrap();
        let dup = urank_topk_with_duplicates(&db, 2);
        assert_eq!(dup[0], dup[1], "same tuple at two positions");
        let distinct = urank_topk(&db, 2);
        assert_eq!(distinct.len(), 2);
        assert_ne!(distinct[0], distinct[1]);
    }

    #[test]
    fn tree_variant_matches_independent() {
        let db = db();
        let tree = AndXorTree::from_independent(&db);
        for k in [1, 3, 5] {
            assert_eq!(urank_topk(&db, k), urank_topk_tree(&tree, k), "k={k}");
        }
    }

    #[test]
    fn tree_variant_on_correlated_data_matches_enumeration() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.5), (6.0, 0.5)],
            vec![(9.0, 0.7)],
            vec![(8.0, 0.2), (7.0, 0.6)],
        ])
        .unwrap();
        let worlds = tree.enumerate_worlds(1 << 12).unwrap();
        let scores = tree.scores();
        // Brute force per position.
        let k = 3;
        let mut chosen: Vec<TupleId> = Vec::new();
        for j in 1..=k {
            let mut best: Option<(f64, TupleId)> = None;
            for t in 0..tree.n_tuples() {
                let tid = TupleId(t as u32);
                if chosen.contains(&tid) {
                    continue;
                }
                let p = worlds.positional_probability(tid, j, scores);
                if p > 0.0 {
                    best = match best {
                        Some((bp, bt))
                            if (bp, std::cmp::Reverse(bt)) >= (p, std::cmp::Reverse(tid)) =>
                        {
                            Some((bp, bt))
                        }
                        _ => Some((p, tid)),
                    };
                }
            }
            chosen.extend(best.map(|(_, t)| t));
        }
        assert_eq!(urank_topk_tree(&tree, k), chosen);
    }
}
