//! Uncertain Rank-k — U-Rank (Soliman et al., ICDE 2007).
//!
//! At each rank `i ∈ 1..=k`, return the tuple maximising `Pr(r(t) = i)`.
//! The original definition may repeat one tuple at several positions (the
//! paper observes a tuple spanning positions 67 895–100 000 on one dataset);
//! following Section 3.2 we enforce distinct tuples greedily: position `i`
//! takes the highest-probability tuple not already chosen.
//!
//! The positional probabilities are PRF special cases (`ω(i) = δ(i = j)`),
//! and the evaluation kernels (bounded per-position candidate tables over
//! the truncated prefix polynomial — `O(n·k + n log n)` for independent
//! tuples, `O(k²)` memory) live in [`prf_core::query::kernels`]; the
//! functions here are thin wrappers over the unified
//! [`prf_core::query::RankQuery`] engine.

use prf_core::query::{kernels, RankQuery};
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

/// The distinct-enforced U-Rank top-k answer on an independent relation.
pub fn urank_topk(db: &IndependentDb, k: usize) -> Vec<TupleId> {
    RankQuery::urank(k)
        .run(db)
        .expect("U-Rank is supported on independent relations")
        .ranking
        .order()
        .to_vec()
}

/// The original U-Rank answer, which may contain duplicates (`None` when no
/// tuple has positive probability at a position).
pub fn urank_topk_with_duplicates(db: &IndependentDb, k: usize) -> Vec<Option<TupleId>> {
    kernels::positional_candidates_independent(db, k).select_with_duplicates()
}

/// U-Rank on an and/xor tree (distinct-enforced): computes
/// `Pr(r(t) = j), j ≤ k` for every tuple via the truncated tree expansion
/// (or the x-tuple fast path) and then selects greedily.
pub fn urank_topk_tree(tree: &AndXorTree, k: usize) -> Vec<TupleId> {
    RankQuery::urank(k)
        .run(tree)
        .expect("U-Rank is supported on and/xor trees")
        .ranking
        .order()
        .to_vec()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays
mod tests {
    use super::*;

    /// Brute-force U-Rank from the full distribution matrix.
    fn brute_urank(db: &IndependentDb, k: usize, distinct: bool) -> Vec<Option<TupleId>> {
        let d = prf_core::independent::rank_distributions(db);
        let mut chosen: Vec<Option<TupleId>> = Vec::new();
        for j in 0..k {
            let mut best: Option<(f64, TupleId)> = None;
            for t in 0..db.len() {
                let tid = TupleId(t as u32);
                if distinct && chosen.iter().flatten().any(|&c| c == tid) {
                    continue;
                }
                let p = d[t][j];
                if p > 0.0 {
                    best = match best {
                        Some((bp, bt))
                            if (bp, std::cmp::Reverse(bt)) >= (p, std::cmp::Reverse(tid)) =>
                        {
                            Some((bp, bt))
                        }
                        _ => Some((p, tid)),
                    };
                }
            }
            chosen.push(best.map(|(_, t)| t));
        }
        chosen
    }

    fn db() -> IndependentDb {
        IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.45),
            (8.0, 0.8),
            (7.0, 0.95),
            (6.0, 0.3),
            (5.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn distinct_matches_brute_force() {
        let db = db();
        for k in 1..=5 {
            let got = urank_topk(&db, k);
            let want: Vec<TupleId> = brute_urank(&db, k, true).into_iter().flatten().collect();
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn duplicates_form_matches_brute_force() {
        let db = db();
        let got = urank_topk_with_duplicates(&db, 4);
        let want = brute_urank(&db, 4, false);
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_pathology_exists() {
        // A dominant-probability tuple can win several positions in the
        // original semantics — the pathology Section 3.2 reports.
        let db = IndependentDb::from_pairs([(10.0, 0.05), (9.0, 0.05), (8.0, 0.999)]).unwrap();
        let dup = urank_topk_with_duplicates(&db, 2);
        assert_eq!(dup[0], dup[1], "same tuple at two positions");
        let distinct = urank_topk(&db, 2);
        assert_eq!(distinct.len(), 2);
        assert_ne!(distinct[0], distinct[1]);
    }

    #[test]
    fn tree_variant_matches_independent() {
        let db = db();
        let tree = AndXorTree::from_independent(&db);
        for k in [1, 3, 5] {
            assert_eq!(urank_topk(&db, k), urank_topk_tree(&tree, k), "k={k}");
        }
    }

    #[test]
    fn tree_variant_on_correlated_data_matches_enumeration() {
        let tree = AndXorTree::from_x_tuples(&[
            vec![(10.0, 0.5), (6.0, 0.5)],
            vec![(9.0, 0.7)],
            vec![(8.0, 0.2), (7.0, 0.6)],
        ])
        .unwrap();
        let worlds = tree.enumerate_worlds(1 << 12).unwrap();
        let scores = tree.scores();
        // Brute force per position.
        let k = 3;
        let mut chosen: Vec<TupleId> = Vec::new();
        for j in 1..=k {
            let mut best: Option<(f64, TupleId)> = None;
            for t in 0..tree.n_tuples() {
                let tid = TupleId(t as u32);
                if chosen.contains(&tid) {
                    continue;
                }
                let p = worlds.positional_probability(tid, j, scores);
                if p > 0.0 {
                    best = match best {
                        Some((bp, bt))
                            if (bp, std::cmp::Reverse(bt)) >= (p, std::cmp::Reverse(tid)) =>
                        {
                            Some((bp, bt))
                        }
                        _ => Some((p, tid)),
                    };
                }
            }
            chosen.extend(best.map(|(_, t)| t));
        }
        assert_eq!(urank_topk_tree(&tree, k), chosen);
    }
}
