//! Expected Ranks — E-Rank (Cormode, Li & Yi, ICDE 2009).
//!
//! Ranks tuples by the expectation of their rank across worlds, where a
//! tuple absent from a world is charged that world's size:
//! `er(t) = Σ_pw Pr(pw)·r_pw(t)` with `r_pw(t) = |pw|` for `t ∉ pw`.
//! *Lower* is better.
//!
//! The closed-form `O(n log n)` kernel for independent tuples lives in
//! [`prf_core::query::kernels`] (Section 3.3's split `er = er₁ + er₂`);
//! the and/xor-tree generalisation runs the dual-number evaluation of
//! `prf-core`. The ranking functions here are thin wrappers over the
//! unified [`prf_core::query::RankQuery`] engine with
//! [`Semantics::ERank`](prf_core::query::Semantics::ERank).

use prf_core::query::{kernels, RankQuery};
use prf_core::topk::Ranking;
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

/// Expected rank of every tuple in an independent relation (`O(n log n)`).
pub fn expected_ranks(db: &IndependentDb) -> Vec<f64> {
    kernels::expected_ranks_independent(db)
}

/// Expected ranks on an and/xor tree (delegates to the dual-number
/// algorithm in `prf-core`).
pub fn expected_ranks_tree(tree: &AndXorTree) -> Vec<f64> {
    prf_core::tree::expected_ranks_tree(tree)
}

/// The E-Rank ranking (ascending expected rank) of an independent relation.
pub fn erank_ranking(db: &IndependentDb) -> Ranking {
    RankQuery::erank()
        .run(db)
        .expect("E-Rank is supported on independent relations")
        .ranking
}

/// The E-Rank ranking on an and/xor tree.
pub fn erank_ranking_tree(tree: &AndXorTree) -> Ranking {
    RankQuery::erank()
        .run(tree)
        .expect("E-Rank is supported on and/xor trees")
        .ranking
}

/// The E-Rank top-k answer.
pub fn erank_topk(db: &IndependentDb, k: usize) -> Vec<TupleId> {
    erank_ranking(db).top_k(k).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_expected_ranks(db: &IndependentDb) -> Vec<f64> {
        let worlds = db.enumerate_worlds(1 << 20).unwrap();
        let scores = db.scores();
        (0..db.len())
            .map(|t| {
                let tid = TupleId(t as u32);
                worlds
                    .worlds
                    .iter()
                    .map(|(w, p)| match w.rank_of(tid, &scores) {
                        Some(r) => p * r as f64,
                        None => p * w.len() as f64,
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn closed_form_matches_brute_force() {
        let db = IndependentDb::from_pairs([
            (10.0, 0.4),
            (9.0, 0.9),
            (8.0, 0.0),
            (7.0, 1.0),
            (6.0, 0.35),
        ])
        .unwrap();
        let got = expected_ranks(&db);
        let want = brute_expected_ranks(&db);
        for i in 0..db.len() {
            assert!(
                (got[i] - want[i]).abs() < 1e-10,
                "t{i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn tree_variant_matches_independent() {
        let db = IndependentDb::from_pairs([(10.0, 0.4), (9.0, 0.9), (8.0, 0.6)]).unwrap();
        let tree = AndXorTree::from_independent(&db);
        let a = expected_ranks(&db);
        let b = expected_ranks_tree(&tree);
        for i in 0..db.len() {
            assert!((a[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn ranking_is_ascending_in_expected_rank() {
        let db = IndependentDb::from_pairs([(10.0, 0.2), (9.0, 0.99), (8.0, 0.5)]).unwrap();
        let er = expected_ranks(&db);
        let order = erank_ranking(&db);
        for w in order.order().windows(2) {
            assert!(er[w[0].index()] <= er[w[1].index()] + 1e-12);
        }
    }

    #[test]
    fn paper_pathology_high_probability_low_score_wins() {
        // Section 3.2 at Syn-IND scale: the 2nd-highest-score tuple with
        // p ≈ 0.98 is out-ranked by the 1000th-highest-score tuple with
        // p = 0.99, because the absent-tuple penalty (1−p)·C dominates when
        // the expected world size C ≈ 50 000.
        let n = 100_000usize;
        let mut pairs = Vec::with_capacity(n);
        for i in 0..n {
            let score = (n - i) as f64;
            let prob = match i {
                1 => 0.98,   // "t2": near-top score, slightly less probable
                999 => 0.99, // "t1000": much lower score, slightly more probable
                _ => 0.5,
            };
            pairs.push((score, prob));
        }
        let db = IndependentDb::from_pairs(pairs).unwrap();
        let er = expected_ranks(&db);
        assert!(
            er[999] < er[1],
            "E-Rank must rank t1000 (er {}) above t2 (er {})",
            er[999],
            er[1]
        );
        // The gap is driven by the (1−p)·C term: ≈ 0.01·C minus the ≈500
        // in-world positions t1000 gives up — small but decisive, exactly
        // the paper's "only slightly more probable" anecdote.
        assert!(er[1] > er[999] + 1.0, "gap should be decisive");
    }
}
