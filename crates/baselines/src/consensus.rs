//! Consensus top-k answers (Section 6; Li & Deshpande, PODS 2009).
//!
//! A consensus answer minimises the *expected distance* to the top-k of a
//! random world: `τ* = argmin_τ E[dis(τ, τ_pw)]`. Two theorems tie this to
//! the PRF framework:
//!
//! * **Theorem 2** — under the symmetric-difference metric
//!   `dis_Δ(τ₁, τ₂) = |τ₁ Δ τ₂|`, the consensus top-k is exactly the PT(k)
//!   answer (the `k` tuples with the largest `Pr(r(t) ≤ k)`);
//! * **Theorem 3** — under the *weighted* symmetric difference
//!   `dis_ω(τ, τ_pw) = Σᵢ ω(i)·δ(τ_pw(i) ∉ τ)`, the consensus top-k is the
//!   PRFω answer for the same weights.
//!
//! This module provides the consensus answers (as thin wrappers over the
//! unified [`prf_core::query::RankQuery`] engine —
//! [`Semantics::Consensus`](prf_core::query::Semantics::Consensus) for the
//! symmetric difference, `Semantics::Prf` with a tabulated weight for the
//! weighted form) and exact expected-distance evaluators over world
//! enumerations, used to verify the theorems.

use prf_core::query::RankQuery;
use prf_core::weights::{StepWeight, TabulatedWeight};
use prf_pdb::{IndependentDb, TupleId, WorldEnumeration};

/// The consensus top-k under symmetric difference — by Theorem 2, PT(k)'s
/// answer.
pub fn consensus_topk(db: &IndependentDb, k: usize) -> Vec<TupleId> {
    RankQuery::consensus(k)
        .top_k(k)
        .run(db)
        .expect("consensus is supported on independent relations")
        .ranking
        .order()
        .to_vec()
}

/// The consensus top-k under the weighted symmetric difference with weights
/// `ω(1..=k)` — by Theorem 3, the PRFω answer for the same weight table.
///
/// `weights[i]` is `ω(i+1)` and must be non-negative.
pub fn consensus_topk_weighted(db: &IndependentDb, weights: &[f64]) -> Vec<TupleId> {
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weighted symmetric difference requires non-negative weights"
    );
    let k = weights.len();
    RankQuery::prf(TabulatedWeight::from_real(weights))
        .value_order(prf_core::topk::ValueOrder::RealPart)
        .top_k(k)
        .run(db)
        .expect("PRFω is supported on independent relations")
        .ranking
        .order()
        .to_vec()
}

/// Exact `E[dis_Δ(τ, τ_pw)]` for a candidate top-k set `τ` over an
/// enumerated world distribution (both `τ_pw` and `τ` are treated as sets;
/// worlds with fewer than `k` tuples contribute their whole content).
pub fn expected_symmetric_difference(
    worlds: &WorldEnumeration,
    answer: &[TupleId],
    k: usize,
    scores: &[f64],
) -> f64 {
    worlds
        .worlds
        .iter()
        .map(|(w, p)| {
            let top = w.top_k(scores, k);
            let in_both = top.iter().filter(|t| answer.contains(t)).count();
            let d = (top.len() - in_both) + (answer.len() - in_both);
            p * d as f64
        })
        .sum()
}

/// Exact `E[dis_ω(τ, τ_pw)]` for a candidate set `τ`:
/// `Σ_pw Pr(pw)·Σᵢ ω(i)·δ(τ_pw(i) ∉ τ)` (Definition 5).
pub fn expected_weighted_symmetric_difference(
    worlds: &WorldEnumeration,
    answer: &[TupleId],
    weights: &[f64],
    scores: &[f64],
) -> f64 {
    let k = weights.len();
    worlds
        .worlds
        .iter()
        .map(|(w, p)| {
            let top = w.top_k(scores, k);
            let penalty: f64 = top
                .iter()
                .enumerate()
                .filter(|(_, t)| !answer.contains(t))
                .map(|(i, _)| weights[i])
                .sum();
            p * penalty
        })
        .sum()
}

/// Keeps the step-weight connection visible: PT(k) ≡ consensus under
/// unweighted symmetric difference, i.e. `ω(i) = δ(i ≤ k)`.
pub fn consensus_weight_for_symmetric_difference(k: usize) -> StepWeight {
    StepWeight { h: k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Every k-subset of the tuples, as sorted vectors.
    fn all_subsets(n: usize, k: usize) -> Vec<Vec<TupleId>> {
        let mut out = Vec::new();
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize == k {
                out.push(
                    (0..n)
                        .filter(|&i| mask >> i & 1 == 1)
                        .map(|i| TupleId(i as u32))
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn theorem_2_pt_k_minimises_expected_symmetric_difference() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..6 {
            let n = 6;
            let db = IndependentDb::from_pairs(
                (0..n).map(|i| (100.0 - i as f64, rng.gen_range(0.05..1.0))),
            )
            .unwrap();
            let worlds = db.enumerate_worlds(1 << 16).unwrap();
            let scores = db.scores();
            for k in 1..=3 {
                let consensus = consensus_topk(&db, k);
                let d_star = expected_symmetric_difference(&worlds, &consensus, k, &scores);
                for cand in all_subsets(n, k) {
                    let d = expected_symmetric_difference(&worlds, &cand, k, &scores);
                    assert!(
                        d_star <= d + 1e-9,
                        "trial {trial} k={k}: PT(k) answer {d_star} beaten by {cand:?} at {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_3_prf_omega_minimises_weighted_distance() {
        let mut rng = StdRng::seed_from_u64(22);
        for trial in 0..6 {
            let n = 6;
            let db = IndependentDb::from_pairs(
                (0..n).map(|i| (100.0 - i as f64, rng.gen_range(0.05..1.0))),
            )
            .unwrap();
            let worlds = db.enumerate_worlds(1 << 16).unwrap();
            let scores = db.scores();
            // Random positive decreasing-ish weights.
            let k = 3;
            let mut weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.1..2.0)).collect();
            weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let consensus = consensus_topk_weighted(&db, &weights);
            let d_star =
                expected_weighted_symmetric_difference(&worlds, &consensus, &weights, &scores);
            for cand in all_subsets(n, k) {
                let d = expected_weighted_symmetric_difference(&worlds, &cand, &weights, &scores);
                assert!(
                    d_star <= d + 1e-9,
                    "trial {trial}: PRFω answer {d_star} beaten by {cand:?} at {d}"
                );
            }
        }
    }

    #[test]
    fn example_6_expected_distance() {
        // Figure 1 database, k = 2, symmetric difference: the most
        // consensus answer is {t2, t5} with expected distance 1.376.
        use prf_pdb::{NodeKind, TreeBuilder};
        let mut b = TreeBuilder::new(NodeKind::And);
        let root = b.root();
        let x1 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x1, 0.4, 120.0).unwrap(); // t1 (id 0)
        let x2 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x2, 0.7, 130.0).unwrap(); // t2 (id 1)
        b.add_leaf(x2, 0.3, 80.0).unwrap(); // t3 (id 2)
        let x3 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x3, 0.4, 95.0).unwrap(); // t4 (id 3)
        b.add_leaf(x3, 0.6, 110.0).unwrap(); // t5 (id 4)
        let x4 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
        b.add_leaf(x4, 1.0, 105.0).unwrap(); // t6 (id 5)
        let tree = b.build().unwrap();
        let worlds = tree.enumerate_worlds(1 << 12).unwrap();
        let scores = tree.scores();
        let answer = vec![TupleId(1), TupleId(4)]; // {t2, t5}
        let d = expected_symmetric_difference(&worlds, &answer, 2, scores);
        // Example 6 prints .112·2+.168·2+.048·4+.072·4+.168·2+.252·0+.072·4
        // +.108·2 = 1.88, but the pw4 term is a typo in the paper: pw4 =
        // {t1, t5, t6, t3} has top-2 {t1, t5}, whose symmetric difference
        // from {t2, t5} is {t1, t2} — distance 2, not 4. The correct
        // expectation is therefore 1.88 − .072·2 = 1.736.
        let expect = 0.112 * 2.0
            + 0.168 * 2.0
            + 0.048 * 4.0
            + 0.072 * 2.0
            + 0.168 * 2.0
            + 0.252 * 0.0
            + 0.072 * 4.0
            + 0.108 * 2.0;
        assert!((d - expect).abs() < 1e-12, "{d} vs {expect}");
        // And it is the minimum over all 2-subsets.
        for cand in all_subsets(6, 2) {
            let dc = expected_symmetric_difference(&worlds, &cand, 2, scores);
            assert!(d <= dc + 1e-12, "{cand:?} at {dc}");
        }
    }

    #[test]
    fn unweighted_is_special_case_of_weighted() {
        let db =
            IndependentDb::from_pairs([(10.0, 0.6), (9.0, 0.5), (8.0, 0.9), (7.0, 0.2)]).unwrap();
        let k = 2;
        let a = consensus_topk(&db, k);
        let b = consensus_topk_weighted(&db, &vec![1.0; k]);
        let mut a: Vec<u32> = a.iter().map(|t| t.0).collect();
        let mut b: Vec<u32> = b.iter().map(|t| t.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let _ = consensus_weight_for_symmetric_difference(k);
    }
}
