//! Prior ranking semantics for probabilistic databases.
//!
//! The PRF framework of `prf-core` unifies most of these as weight-function
//! special cases, and since the unified query engine landed every function
//! here is a **thin wrapper over [`prf_core::query::RankQuery`]** (the
//! set-semantics kernels themselves live in `prf_core::query::kernels`).
//! The wrappers are kept — with their original signatures and behaviour —
//! because the paper's experiments (Table 1, Figures 7–11) compare against
//! them directly and because downstream call sites should not break; their
//! tests double as a differential suite for the engine. Two of the
//! semantics (U-Top and k-selection) are *set* semantics that fall outside
//! the PRF family; k-selection has no engine counterpart and remains a
//! first-class implementation here.
//!
//! | module | semantics | source |
//! |--------|-----------|--------|
//! | [`pt`] | PT(h): top-k by `Pr(r(t) ≤ h)` | Hua et al. 2008 / Zhang & Chomicki |
//! | [`urank`] | U-Rank: per-position argmax of `Pr(r(t) = i)` | Soliman et al. 2007 |
//! | [`utop`] | U-Top: most probable top-k *set* | Soliman et al. 2007 |
//! | [`erank`] | expected ranks | Cormode et al. 2009 |
//! | [`escore`] | expected score, raw score, raw probability | folklore / Cormode et al. |
//! | [`kselect`] | k-selection: best expected max-score set | Liu et al. 2010 |
//! | [`consensus`] | consensus top-k ≡ PT(k) / PRFω (Theorems 2–3) | Li & Deshpande 2009 |

#![deny(missing_docs)]

pub mod consensus;
pub mod erank;
pub mod escore;
pub mod kselect;
pub mod pt;
pub mod urank;
pub mod utop;

pub use consensus::{
    consensus_topk, consensus_topk_weighted, expected_symmetric_difference,
    expected_weighted_symmetric_difference,
};
pub use erank::{erank_ranking, erank_ranking_tree, erank_topk, expected_ranks};
pub use escore::{
    escore_ranking, escore_ranking_tree, escore_topk, expected_scores, probability_ranking,
    score_ranking,
};
pub use kselect::{k_selection, selection_value};
pub use pt::{pt_ranking, pt_ranking_tree, pt_topk, pt_topk_tree, pt_values, pt_values_tree};
pub use urank::{urank_topk, urank_topk_tree, urank_topk_with_duplicates};
pub use utop::{utop_topk, utop_topk_monte_carlo};
