//! Uncertain Top-k — U-Top (Soliman et al., ICDE 2007).
//!
//! Returns the `k`-tuple *set* with the highest probability of being the
//! exact top-k of a random world — the one semantics the paper shows falls
//! *outside* the PRF family.
//!
//! The exact `O(n log n)` odds-ratio sweep for independent tuples (and the
//! enumerated exact answer for small correlated relations) lives in
//! [`prf_core::query::kernels`]; [`utop_topk`] is a thin wrapper over the
//! unified [`prf_core::query::RankQuery`] engine with
//! [`Semantics::UTop`](prf_core::query::Semantics::UTop). The Monte-Carlo
//! estimator for large correlated relations stays here (it is
//! caller-seeded, which the deterministic engine deliberately does not
//! model).

use std::collections::HashMap;

use rand::Rng;

use prf_core::query::RankQuery;
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

/// The U-Top answer on an independent relation: the top-k set (score
/// descending) and the natural log of its probability of being the exact
/// top-k. Returns `None` when `k` exceeds the number of tuples or no set
/// has positive probability.
pub fn utop_topk(db: &IndependentDb, k: usize) -> Option<(Vec<TupleId>, f64)> {
    RankQuery::utop(k)
        .run(db)
        .ok()
        .and_then(|r| r.set)
        .map(|s| (s.members, s.log_prob))
}

/// Monte-Carlo U-Top on an and/xor tree: samples `samples` worlds and
/// returns the most frequent top-k set (score-descending order) with its
/// empirical frequency.
pub fn utop_topk_monte_carlo(
    tree: &AndXorTree,
    k: usize,
    samples: usize,
    rng: &mut impl Rng,
) -> Option<(Vec<TupleId>, f64)> {
    if k == 0 || samples == 0 {
        return None;
    }
    let scores = tree.scores();
    let mut counts: HashMap<Vec<TupleId>, usize> = HashMap::new();
    for _ in 0..samples {
        let w = tree.sample_world(rng);
        if w.len() < k {
            continue;
        }
        let top = w.top_k(scores, k);
        *counts.entry(top).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(set, c)| (set, c as f64 / samples as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exhaustive oracle: try every k-subset.
    fn brute_utop(db: &IndependentDb, k: usize) -> Option<(Vec<TupleId>, f64)> {
        let worlds = db.enumerate_worlds(1 << 22).unwrap();
        let scores = db.scores();
        let n = db.len();
        let mut best: Option<(Vec<TupleId>, f64)> = None;
        // Enumerate subsets of size k.
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let set: Vec<TupleId> = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| TupleId(i as u32))
                .collect();
            let mut sorted = set.clone();
            sorted.sort_by(|a, b| {
                scores[b.index()]
                    .partial_cmp(&scores[a.index()])
                    .unwrap()
                    .then(a.cmp(b))
            });
            let p: f64 = worlds
                .worlds
                .iter()
                .filter(|(w, _)| w.len() >= k && w.top_k(&scores, k) == sorted)
                .map(|(_, p)| p)
                .sum();
            if p > 0.0 && best.as_ref().is_none_or(|(_, bp)| p > *bp + 1e-15) {
                best = Some((sorted, p));
            }
        }
        best
    }

    #[test]
    fn matches_exhaustive_oracle() {
        let dbs = [
            IndependentDb::from_pairs([(10.0, 0.4), (9.0, 0.9), (8.0, 0.5), (7.0, 0.7)]).unwrap(),
            IndependentDb::from_pairs([
                (10.0, 0.2),
                (9.0, 0.2),
                (8.0, 0.95),
                (7.0, 0.3),
                (6.0, 0.8),
            ])
            .unwrap(),
        ];
        for db in &dbs {
            for k in 1..=3 {
                let (set, logp) = utop_topk(db, k).unwrap();
                let (bset, bp) = brute_utop(db, k).unwrap();
                assert_eq!(set, bset, "k={k}");
                assert!(
                    (logp.exp() - bp).abs() < 1e-10,
                    "k={k}: {} vs {bp}",
                    logp.exp()
                );
            }
        }
    }

    #[test]
    fn certain_tuples_are_forced() {
        let db =
            IndependentDb::from_pairs([(10.0, 0.1), (9.0, 1.0), (8.0, 0.9), (7.0, 1.0)]).unwrap();
        for k in 2..=3 {
            let (set, logp) = utop_topk(&db, k).unwrap();
            let (bset, bp) = brute_utop(&db, k).unwrap();
            assert_eq!(set, bset, "k={k}");
            assert!((logp.exp() - bp).abs() < 1e-10);
        }
    }

    #[test]
    fn k_larger_than_n() {
        let db = IndependentDb::from_pairs([(1.0, 0.5)]).unwrap();
        assert!(utop_topk(&db, 2).is_none());
    }

    #[test]
    fn monte_carlo_agrees_with_exact_on_independent_data() {
        let db =
            IndependentDb::from_pairs([(10.0, 0.9), (9.0, 0.85), (8.0, 0.2), (7.0, 0.6)]).unwrap();
        let tree = AndXorTree::from_independent(&db);
        let mut rng = StdRng::seed_from_u64(11);
        let (mc_set, freq) = utop_topk_monte_carlo(&tree, 2, 30_000, &mut rng).unwrap();
        let (exact_set, logp) = utop_topk(&db, 2).unwrap();
        assert_eq!(mc_set, exact_set);
        assert!((freq - logp.exp()).abs() < 0.02);
    }

    #[test]
    fn engine_tree_path_matches_independent_sweep() {
        let db =
            IndependentDb::from_pairs([(10.0, 0.9), (9.0, 0.85), (8.0, 0.2), (7.0, 0.6)]).unwrap();
        let tree = AndXorTree::from_independent(&db);
        let via_tree = RankQuery::utop(2).run(&tree).unwrap().set.unwrap();
        let (set, logp) = utop_topk(&db, 2).unwrap();
        assert_eq!(via_tree.members, set);
        assert!((via_tree.log_prob - logp).abs() < 1e-10);
    }
}
