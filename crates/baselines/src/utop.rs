//! Uncertain Top-k — U-Top (Soliman et al., ICDE 2007).
//!
//! Returns the `k`-tuple *set* with the highest probability of being the
//! exact top-k of a random world.
//!
//! For independent tuples sorted by score (`t₁ … tₙ`), a set `S` whose
//! lowest-scored member sits at position `i` is the top-k iff every member
//! is present and every non-member above position `i` is absent:
//!
//! ```text
//! Pr(S top-k) = Π_{t∈S} p_t · Π_{t∉S, pos(t)<i} (1 − p_t)
//!             = (Π_{j<i} (1−p_j)) · (Π_{j∈S, j<i} p_j/(1−p_j)) · p_i
//! ```
//!
//! so the optimum fixes `i` and takes the `k−1` largest odds-ratios
//! `p_j/(1−p_j)` above it. Sweeping `i` with a two-heap top-m structure
//! gives `O(n log n)` exactly. Certain tuples (`p = 1`) have infinite odds
//! and are forced into the set; the computation runs in log-space so
//! nothing under- or overflows.
//!
//! For correlated (and/xor tree) data we provide a Monte-Carlo estimator —
//! the paper evaluates U-Top only on independent datasets.

use std::collections::HashMap;

use rand::Rng;

use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

/// Maintains the sum of the `m` largest values in a growing multiset, with
/// `m` adjustable downwards — a pair of heaps ("top" min-heap, "rest"
/// max-heap).
struct TopM {
    m: usize,
    top: std::collections::BinaryHeap<std::cmp::Reverse<OrdF64>>,
    rest: std::collections::BinaryHeap<OrdF64>,
    top_sum: f64,
}

#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN keys")
    }
}

impl TopM {
    fn new(m: usize) -> Self {
        TopM {
            m,
            top: Default::default(),
            rest: Default::default(),
            top_sum: 0.0,
        }
    }

    fn rebalance(&mut self) {
        while self.top.len() > self.m {
            let std::cmp::Reverse(v) = self.top.pop().expect("non-empty");
            self.top_sum -= v.0;
            self.rest.push(v);
        }
        while self.top.len() < self.m {
            match self.rest.pop() {
                Some(v) => {
                    self.top_sum += v.0;
                    self.top.push(std::cmp::Reverse(v));
                }
                None => break,
            }
        }
    }

    fn insert(&mut self, v: f64) {
        self.top.push(std::cmp::Reverse(OrdF64(v)));
        self.top_sum += v;
        self.rebalance();
    }

    fn shrink_m(&mut self) {
        assert!(self.m > 0, "cannot shrink below zero");
        self.m -= 1;
        self.rebalance();
    }

    /// Sum of the top `min(m, len)` values.
    fn sum(&self) -> f64 {
        self.top_sum
    }

    fn len_total(&self) -> usize {
        self.top.len() + self.rest.len()
    }
}

/// The U-Top answer on an independent relation: the top-k set (score
/// descending) and the natural log of its probability of being the exact
/// top-k. Returns `None` when `k` exceeds the number of tuples or no set
/// has positive probability.
pub fn utop_topk(db: &IndependentDb, k: usize) -> Option<(Vec<TupleId>, f64)> {
    let n = db.len();
    if k == 0 || k > n {
        return None;
    }
    let order = sort_indices_by_score_desc(&db.scores());
    let probs: Vec<f64> = order
        .iter()
        .map(|&i| db.tuple(TupleId(i as u32)).prob)
        .collect();

    // Sweep the position of the lowest-scored member.
    let mut best: Option<(usize, f64)> = None; // (last position, log prob)
    let mut base = 0.0f64; // Σ_{j<i, p<1} ln(1−p_j)
    let mut forced = 0usize; // count of p=1 tuples above i
    let mut ratios = TopM::new(k - 1);

    for (i, &p_i) in probs.iter().enumerate() {
        if p_i > 0.0 && i + 1 >= k && forced < k {
            // Need k−1−forced optional members from the uncertain prefix.
            let need = k - 1 - forced;
            if ratios.len_total() >= need {
                // `ratios` is maintained with m = k−1−forced (see below), so
                // its sum is exactly what we need.
                debug_assert_eq!(ratios.m, need);
                let logp = base + ratios.sum() + p_i.ln();
                if best.is_none_or(|(_, b)| logp > b) {
                    best = Some((i, logp));
                }
            }
        }
        // Fold tuple i into the prefix structures.
        if p_i >= 1.0 {
            forced += 1;
            if forced > k - 1 {
                // Any further candidate set must include > k−1 certain
                // tuples above its last member — impossible; stop.
                break;
            }
            ratios.shrink_m();
        } else if p_i > 0.0 {
            base += (1.0 - p_i).ln();
            ratios.insert(p_i.ln() - (1.0 - p_i).ln());
        }
        // p_i == 0 tuples can never appear; they contribute nothing.
    }

    let (last_pos, logp) = best?;
    // Reconstruct: all certain tuples above last_pos, plus the top
    // (k−1−forced) odds ratios among uncertain ones, plus the last tuple.
    let mut forced_ids = Vec::new();
    let mut optional: Vec<(f64, usize)> = Vec::new();
    for (j, &p) in probs.iter().enumerate().take(last_pos) {
        if p >= 1.0 {
            forced_ids.push(j);
        } else if p > 0.0 {
            optional.push((p.ln() - (1.0 - p).ln(), j));
        }
    }
    optional.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN").then(a.1.cmp(&b.1)));
    let need = k - 1 - forced_ids.len();
    let mut members: Vec<usize> = forced_ids;
    members.extend(optional.into_iter().take(need).map(|(_, j)| j));
    members.push(last_pos);
    members.sort_unstable();
    Some((
        members
            .into_iter()
            .map(|pos| TupleId(order[pos] as u32))
            .collect(),
        logp,
    ))
}

/// Monte-Carlo U-Top on an and/xor tree: samples `samples` worlds and
/// returns the most frequent top-k set (score-descending order) with its
/// empirical frequency.
pub fn utop_topk_monte_carlo(
    tree: &AndXorTree,
    k: usize,
    samples: usize,
    rng: &mut impl Rng,
) -> Option<(Vec<TupleId>, f64)> {
    if k == 0 || samples == 0 {
        return None;
    }
    let scores = tree.scores();
    let mut counts: HashMap<Vec<TupleId>, usize> = HashMap::new();
    for _ in 0..samples {
        let w = tree.sample_world(rng);
        if w.len() < k {
            continue;
        }
        let top = w.top_k(scores, k);
        *counts.entry(top).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(set, c)| (set, c as f64 / samples as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exhaustive oracle: try every k-subset.
    fn brute_utop(db: &IndependentDb, k: usize) -> Option<(Vec<TupleId>, f64)> {
        let worlds = db.enumerate_worlds(1 << 22).unwrap();
        let scores = db.scores();
        let n = db.len();
        let mut best: Option<(Vec<TupleId>, f64)> = None;
        // Enumerate subsets of size k.
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let set: Vec<TupleId> = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| TupleId(i as u32))
                .collect();
            let mut sorted = set.clone();
            sorted.sort_by(|a, b| {
                scores[b.index()]
                    .partial_cmp(&scores[a.index()])
                    .unwrap()
                    .then(a.cmp(b))
            });
            let p: f64 = worlds
                .worlds
                .iter()
                .filter(|(w, _)| w.len() >= k && w.top_k(&scores, k) == sorted)
                .map(|(_, p)| p)
                .sum();
            if p > 0.0 && best.as_ref().is_none_or(|(_, bp)| p > *bp + 1e-15) {
                best = Some((sorted, p));
            }
        }
        best
    }

    #[test]
    fn matches_exhaustive_oracle() {
        let dbs = [
            IndependentDb::from_pairs([(10.0, 0.4), (9.0, 0.9), (8.0, 0.5), (7.0, 0.7)]).unwrap(),
            IndependentDb::from_pairs([
                (10.0, 0.2),
                (9.0, 0.2),
                (8.0, 0.95),
                (7.0, 0.3),
                (6.0, 0.8),
            ])
            .unwrap(),
        ];
        for db in &dbs {
            for k in 1..=3 {
                let (set, logp) = utop_topk(db, k).unwrap();
                let (bset, bp) = brute_utop(db, k).unwrap();
                assert_eq!(set, bset, "k={k}");
                assert!(
                    (logp.exp() - bp).abs() < 1e-10,
                    "k={k}: {} vs {bp}",
                    logp.exp()
                );
            }
        }
    }

    #[test]
    fn certain_tuples_are_forced() {
        let db =
            IndependentDb::from_pairs([(10.0, 0.1), (9.0, 1.0), (8.0, 0.9), (7.0, 1.0)]).unwrap();
        for k in 2..=3 {
            let (set, logp) = utop_topk(&db, k).unwrap();
            let (bset, bp) = brute_utop(&db, k).unwrap();
            assert_eq!(set, bset, "k={k}");
            assert!((logp.exp() - bp).abs() < 1e-10);
        }
    }

    #[test]
    fn k_larger_than_n() {
        let db = IndependentDb::from_pairs([(1.0, 0.5)]).unwrap();
        assert!(utop_topk(&db, 2).is_none());
    }

    #[test]
    fn monte_carlo_agrees_with_exact_on_independent_data() {
        let db =
            IndependentDb::from_pairs([(10.0, 0.9), (9.0, 0.85), (8.0, 0.2), (7.0, 0.6)]).unwrap();
        let tree = AndXorTree::from_independent(&db);
        let mut rng = StdRng::seed_from_u64(11);
        let (mc_set, freq) = utop_topk_monte_carlo(&tree, 2, 30_000, &mut rng).unwrap();
        let (exact_set, logp) = utop_topk(&db, 2).unwrap();
        assert_eq!(mc_set, exact_set);
        assert!((freq - logp.exp()).abs() < 0.02);
    }
}
