//! Probabilistic Threshold top-k — PT(h) (Hua et al., SIGMOD 2008), a close
//! relative of Global-Top-k (Zhang & Chomicki).
//!
//! Ranks tuples by `Pr(r(t) ≤ h)` and returns the best `k`. This is exactly
//! the PRF special case `ω(i) = δ(i ≤ h)`, so every function here is a thin
//! wrapper over the unified [`RankQuery`] engine with
//! [`Semantics::Pt`](prf_core::query::Semantics::Pt): `O(n·h + n log n)`
//! for independent tuples and x-tuples, `O(n²·h)` for general and/xor
//! trees.

use prf_core::query::RankQuery;
use prf_core::topk::Ranking;
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

/// `Pr(r(t) ≤ h)` for every tuple of an independent relation.
pub fn pt_values(db: &IndependentDb, h: usize) -> Vec<f64> {
    pt_query(h)
        .run(db)
        .expect("PT is supported on independent relations")
        .values
        .as_complex()
        .expect("exact PT values are complex")
        .iter()
        .map(|v| v.re)
        .collect()
}

/// The PT(h) ranking of an independent relation.
pub fn pt_ranking(db: &IndependentDb, h: usize) -> Ranking {
    pt_query(h)
        .run(db)
        .expect("PT is supported on independent relations")
        .ranking
}

/// The PT(h) top-k answer (k tuples with the largest `Pr(r(t) ≤ h)`).
pub fn pt_topk(db: &IndependentDb, h: usize, k: usize) -> Vec<TupleId> {
    pt_ranking(db, h).top_k(k).to_vec()
}

/// `Pr(r(t) ≤ h)` on an and/xor tree. Uses the `O(n·h·log n)` x-tuple fast
/// path when the tree is in x-tuple form and the generic truncated expansion
/// otherwise.
pub fn pt_values_tree(tree: &AndXorTree, h: usize) -> Vec<f64> {
    pt_query(h)
        .run(tree)
        .expect("PT is supported on and/xor trees")
        .values
        .as_complex()
        .expect("exact PT values are complex")
        .iter()
        .map(|v| v.re)
        .collect()
}

/// The PT(h) ranking on an and/xor tree.
pub fn pt_ranking_tree(tree: &AndXorTree, h: usize) -> Ranking {
    pt_query(h)
        .run(tree)
        .expect("PT is supported on and/xor trees")
        .ranking
}

/// The PT(h) top-k answer on an and/xor tree.
pub fn pt_topk_tree(tree: &AndXorTree, h: usize, k: usize) -> Vec<TupleId> {
    pt_ranking_tree(tree, h).top_k(k).to_vec()
}

/// The original thresholded form of the query: all tuples with
/// `Pr(r(t) ≤ h) > threshold`, in decreasing probability order.
pub fn pt_threshold(db: &IndependentDb, h: usize, threshold: f64) -> Vec<TupleId> {
    let values = pt_values(db, h);
    let ranking = Ranking::from_keys(&values);
    ranking
        .order()
        .iter()
        .copied()
        .take_while(|t| values[t.index()] > threshold)
        .collect()
}

/// The engine query behind every wrapper in this module; pinned to the
/// exact generating-function path so the legacy contract (exact values)
/// is preserved regardless of `Auto` heuristics.
fn pt_query(h: usize) -> RankQuery {
    RankQuery::pt(h).algorithm(prf_core::query::Algorithm::ExactGf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt_values_are_prefix_sums_of_rank_distributions() {
        let db =
            IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5), (6.0, 0.99)]).unwrap();
        let d = prf_core::independent::rank_distributions(&db);
        for h in 1..=4 {
            let v = pt_values(&db, h);
            for t in 0..db.len() {
                let want: f64 = d[t][..h].iter().sum();
                assert!((v[t] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn topk_and_threshold_forms_agree() {
        let db =
            IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5), (6.0, 0.99)]).unwrap();
        let by_k = pt_topk(&db, 2, 4);
        let by_threshold = pt_threshold(&db, 2, 0.0);
        assert_eq!(by_k, by_threshold);
        // A high threshold filters.
        let strict = pt_threshold(&db, 2, 0.9);
        assert!(strict.len() < by_threshold.len());
    }

    #[test]
    fn tree_dispatch_matches_independent() {
        let db = IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5)]).unwrap();
        let tree = AndXorTree::from_independent(&db);
        let a = pt_values(&db, 2);
        let b = pt_values_tree(&tree, 2);
        for t in 0..db.len() {
            assert!((a[t] - b[t]).abs() < 1e-10);
        }
        assert_eq!(pt_topk(&db, 2, 2), pt_topk_tree(&tree, 2, 2));
    }

    #[test]
    fn wrapper_matches_direct_prf_evaluation() {
        let db =
            IndependentDb::from_pairs([(9.0, 0.4), (8.0, 0.8), (7.0, 0.5), (6.0, 0.99)]).unwrap();
        let direct = prf_core::independent::prf_rank(&db, &prf_core::weights::StepWeight { h: 2 });
        let wrapped = pt_values(&db, 2);
        for t in 0..db.len() {
            assert_eq!(wrapped[t], direct[t].re, "wrapper must be bit-identical");
        }
    }
}
