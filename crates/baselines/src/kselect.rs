//! k-selection queries (Liu et al., DASFAA 2010).
//!
//! Returns the *set* of `k` tuples maximising the expected score of the
//! best available (present) member:
//!
//! ```text
//! V(S) = E[ max_{t ∈ S ∩ pw} score(t) ]
//!      = Σ_{t ∈ S} score(t)·p(t)·Π_{t' ∈ S, score(t') > score(t)} (1 − p(t'))
//! ```
//!
//! (absent max contributes 0). Unlike the other semantics, the answer
//! depends on the actual score *values*. For independent tuples the optimal
//! set satisfies a suffix recurrence over tuples in score order —
//! `f(i, j) = max(f(i+1, j), pᵢ·sᵢ + (1−pᵢ)·f(i+1, j−1))` — an `O(n·k)`
//! dynamic program.

use prf_pdb::tuple::sort_indices_by_score_desc;
use prf_pdb::{IndependentDb, TupleId};

/// The optimal k-selection set (score-descending order) and its expected
/// best-available score. Returns `None` for `k = 0`.
///
/// Scores are assumed non-negative, matching the "best available tuple"
/// semantics of the original definition (an empty selection scores 0).
pub fn k_selection(db: &IndependentDb, k: usize) -> Option<(Vec<TupleId>, f64)> {
    let n = db.len();
    if k == 0 || n == 0 {
        return None;
    }
    let k = k.min(n);
    let order = sort_indices_by_score_desc(&db.scores());
    // f[j] after processing suffix i.. = best value choosing j from suffix.
    // choice[i][j] records whether tuple at sorted position i is taken when
    // j slots remain.
    let mut f = vec![0.0f64; k + 1];
    let mut choice = vec![false; n * (k + 1)];
    for i in (0..n).rev() {
        let t = db.tuple(TupleId(order[i] as u32));
        // Process j downwards so f[j-1] is still the i+1 suffix value.
        for j in (1..=k).rev() {
            let take = t.prob * t.score + (1.0 - t.prob) * f[j - 1];
            if take > f[j] {
                f[j] = take;
                choice[i * (k + 1) + j] = true;
            }
        }
    }
    // Reconstruct.
    let mut set = Vec::with_capacity(k);
    let mut j = k;
    for i in 0..n {
        if j == 0 {
            break;
        }
        if choice[i * (k + 1) + j] {
            set.push(TupleId(order[i] as u32));
            j -= 1;
        }
    }
    Some((set, f[k]))
}

/// Evaluates `V(S)` for an explicit selection (any order).
pub fn selection_value(db: &IndependentDb, set: &[TupleId]) -> f64 {
    let mut members: Vec<TupleId> = set.to_vec();
    members.sort_by(|a, b| {
        db.tuple(*b)
            .score
            .partial_cmp(&db.tuple(*a).score)
            .expect("no NaN scores")
            .then(a.cmp(b))
    });
    let mut value = 0.0;
    let mut all_above_absent = 1.0;
    for t in members {
        let t = db.tuple(t);
        value += t.score * t.prob * all_above_absent;
        all_above_absent *= 1.0 - t.prob;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(db: &IndependentDb, k: usize) -> (Vec<TupleId>, f64) {
        let n = db.len();
        let mut best: Option<(Vec<TupleId>, f64)> = None;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let set: Vec<TupleId> = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| TupleId(i as u32))
                .collect();
            let v = selection_value(db, &set);
            if best.as_ref().is_none_or(|(_, bv)| v > *bv + 1e-15) {
                best = Some((set, v));
            }
        }
        best.unwrap()
    }

    #[test]
    fn dp_matches_exhaustive() {
        let db = IndependentDb::from_pairs([
            (100.0, 0.2),
            (90.0, 0.5),
            (80.0, 0.9),
            (40.0, 1.0),
            (30.0, 0.7),
        ])
        .unwrap();
        for k in 1..=4 {
            let (set, v) = k_selection(&db, k).unwrap();
            let (bset, bv) = brute(&db, k);
            assert!((v - bv).abs() < 1e-12, "k={k}: {v} vs {bv}");
            let mut s1: Vec<u32> = set.iter().map(|t| t.0).collect();
            let mut s2: Vec<u32> = bset.iter().map(|t| t.0).collect();
            s1.sort_unstable();
            s2.sort_unstable();
            assert_eq!(s1, s2, "k={k}");
        }
    }

    #[test]
    fn selection_value_matches_world_expectation() {
        let db = IndependentDb::from_pairs([(10.0, 0.5), (6.0, 0.8), (2.0, 0.9)]).unwrap();
        let set = vec![TupleId(0), TupleId(2)];
        let v = selection_value(&db, &set);
        let worlds = db.enumerate_worlds(1 << 10).unwrap();
        let scores = db.scores();
        let expect: f64 = worlds
            .worlds
            .iter()
            .map(|(w, p)| {
                let best = set
                    .iter()
                    .filter(|t| w.contains(**t))
                    .map(|t| scores[t.index()])
                    .fold(0.0f64, f64::max);
                p * best
            })
            .sum();
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn risky_high_score_vs_safe_low_score() {
        // With one slot, a safe mid score can beat a risky high score.
        let db = IndependentDb::from_pairs([(100.0, 0.1), (40.0, 1.0)]).unwrap();
        let (set, v) = k_selection(&db, 1).unwrap();
        assert_eq!(set, vec![TupleId(1)]);
        assert!((v - 40.0).abs() < 1e-12);
        // With two slots we take both; the risky one shields nothing.
        let (set2, v2) = k_selection(&db, 2).unwrap();
        assert_eq!(set2.len(), 2);
        assert!((v2 - (0.1 * 100.0 + 0.9 * 40.0)).abs() < 1e-12);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let db = IndependentDb::from_pairs([(10.0, 0.5)]).unwrap();
        assert!(k_selection(&db, 0).is_none());
        let (set, _) = k_selection(&db, 5).unwrap();
        assert_eq!(set.len(), 1);
    }
}
