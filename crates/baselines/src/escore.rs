//! Expected Score — E-Score: rank by `Pr(t)·score(t)`.
//!
//! The simplest semantics, also studied by Cormode et al. Being a function
//! of each tuple's marginal alone it is *invariant to correlations* — a
//! drawback Section 8.3 highlights — and `O(n log n)` everywhere. The
//! ranking functions are thin wrappers over the unified
//! [`prf_core::query::RankQuery`] engine with
//! [`Semantics::EScore`](prf_core::query::Semantics::EScore).

use prf_core::query::RankQuery;
use prf_core::topk::Ranking;
use prf_pdb::{AndXorTree, IndependentDb, TupleId};

/// `Pr(t)·score(t)` per tuple.
pub fn expected_scores(db: &IndependentDb) -> Vec<f64> {
    db.tuples().iter().map(|t| t.prob * t.score).collect()
}

/// Expected scores on an and/xor tree (marginals × scores).
pub fn expected_scores_tree(tree: &AndXorTree) -> Vec<f64> {
    tree.marginals()
        .iter()
        .zip(tree.scores())
        .map(|(&p, &s)| p * s)
        .collect()
}

/// The E-Score ranking.
pub fn escore_ranking(db: &IndependentDb) -> Ranking {
    RankQuery::escore()
        .run(db)
        .expect("E-Score is supported everywhere")
        .ranking
}

/// The E-Score ranking on an and/xor tree.
pub fn escore_ranking_tree(tree: &AndXorTree) -> Ranking {
    RankQuery::escore()
        .run(tree)
        .expect("E-Score is supported everywhere")
        .ranking
}

/// The E-Score top-k answer.
pub fn escore_topk(db: &IndependentDb, k: usize) -> Vec<TupleId> {
    escore_ranking(db).top_k(k).to_vec()
}

/// Ranking by raw score (ignoring probabilities) — the deterministic
/// baseline plotted in Figure 7.
pub fn score_ranking(db: &IndependentDb) -> Ranking {
    Ranking::from_keys(&db.scores())
}

/// Ranking by existence probability (ignoring scores) — PRFe(1), also in
/// Figure 7.
pub fn probability_ranking(db: &IndependentDb) -> Ranking {
    Ranking::from_keys(&db.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escore_matches_prf_special_case() {
        let db = IndependentDb::from_pairs([(10.0, 0.4), (5.0, 0.9), (3.0, 1.0)]).unwrap();
        let direct = expected_scores(&db);
        let via_prf = prf_core::independent::prf_rank(&db, &prf_core::weights::ScoreWeight);
        for i in 0..db.len() {
            assert!((direct[i] - via_prf[i].re).abs() < 1e-12);
        }
    }

    #[test]
    fn invariant_to_correlations() {
        // Same marginals, different correlation structure ⇒ same E-Score.
        let groups_corr = vec![vec![(10.0, 0.5), (5.0, 0.5)]];
        let tree_corr = AndXorTree::from_x_tuples(&groups_corr).unwrap();
        let groups_ind = vec![vec![(10.0, 0.5)], vec![(5.0, 0.5)]];
        let tree_ind = AndXorTree::from_x_tuples(&groups_ind).unwrap();
        assert_eq!(
            expected_scores_tree(&tree_corr),
            expected_scores_tree(&tree_ind)
        );
    }

    #[test]
    fn risk_reward_example_from_section_3_3() {
        // t1(score 100, p .5) vs t2(score 50, p 1.0): E-Score ties them —
        // the knife-edge of the risk/reward trade-off.
        let db = IndependentDb::from_pairs([(100.0, 0.5), (50.0, 1.0)]).unwrap();
        let es = expected_scores(&db);
        assert_eq!(es[0], es[1]);
        // Score ranking prefers t1, probability ranking prefers t2.
        assert_eq!(score_ranking(&db).order()[0], TupleId(0));
        assert_eq!(probability_ranking(&db).order()[0], TupleId(1));
    }
}
