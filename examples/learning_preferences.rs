//! Learning a ranking function from user feedback (Section 5.2).
//!
//! A "user" ranks a small sample of the database according to their hidden
//! preference function; we fit (a) the single PRFe parameter α by grid
//! search and (b) a full PRFω(h) weight table by pairwise hinge-loss
//! descent, then check how well each learned function reproduces the user's
//! ranking on the complete database — the learned functions run through the
//! unified `RankQuery` engine like any built-in semantics.
//!
//! ```text
//! cargo run --release --example learning_preferences
//! ```

use prf::approx::learn::{learn_prf_omega, learn_prfe_alpha_topk, RankLearnConfig};
use prf::datasets::{subsample_independent, syn_ind};
use prf::prelude::*;

fn main() {
    let n = 20_000;
    let db = syn_ind(n, 7);
    let k = 100;

    // The user's hidden preference: PT(100) semantics.
    let hidden = |db: &prf::pdb::IndependentDb| {
        RankQuery::pt(100.min(db.len()))
            .run(db)
            .expect("PT on independent data")
            .ranking
    };
    let truth_full = hidden(&db).top_k_u32(k);

    println!("hidden user preference: PT(100); database: Syn-IND-{n}");
    println!("\nsample size → learned-α quality and learned-ω quality (top-{k} Kendall):");
    println!(
        "{:>9}{:>10}{:>14}{:>14}",
        "sample", "α̂", "PRFe(α̂) dist", "PRFω dist"
    );

    for m in [100usize, 500, 2_000] {
        let (sample, _) = subsample_independent(&db, m, 1000 + m as u64);
        let user_ranking = hidden(&sample).order().to_vec();

        // (a) Fit α, focusing the objective on the top-k prefix the user
        // actually cares about (see prf-approx docs), then rank the full
        // relation with the learned PRFe(α̂).
        let alpha = learn_prfe_alpha_topk(&sample, &user_ranking, 4, k);
        let learned_e = RankQuery::prfe(alpha)
            .run(&db)
            .expect("PRFe on independent data")
            .ranking
            .top_k_u32(k);
        let d_e = kendall_topk(&learned_e, &truth_full, k);

        // (b) Fit PRFω(h) weights and rank with the learned table.
        let weights = learn_prf_omega(
            &sample,
            &user_ranking,
            &RankLearnConfig {
                h: 100.min(m),
                epochs: 80,
                ..Default::default()
            },
        );
        let learned_w = RankQuery::prf(TabulatedWeight::from_real(&weights))
            .value_order(ValueOrder::RealPart)
            .run(&db)
            .expect("PRFω on independent data")
            .ranking
            .top_k_u32(k);
        let d_w = kendall_topk(&learned_w, &truth_full, k);

        println!("{m:>9}{alpha:>10.4}{d_e:>14.4}{d_w:>14.4}");
    }

    println!(
        "\nReading: even modest samples pin down a PRFe(α) that reproduces \
         the user's PT(100) watchlist closely; the PRFω learner needs the \
         positional-probability features of only the sample, never the full \
         relation."
    );
}
