//! Iceberg monitoring at scale: the paper's IIP workload end to end.
//!
//! Simulates an International Ice Patrol sighting database (drift days as
//! score, sighting-source confidence as probability), compares what the
//! classical ranking functions would tell an analyst, then shows the
//! PRFe-mixture trick: approximating PT(1000) with 40 exponentials and
//! ranking the whole dataset in a fraction of the exact cost — every
//! semantics and algorithm selected through the unified `RankQuery` engine.
//!
//! ```text
//! cargo run --release --example iceberg_monitoring
//! ```

use prf::datasets::iip_db;
use prf::prelude::*;

fn main() {
    let n = 100_000;
    let db = iip_db(n, 42);
    println!(
        "simulated IIP dataset: {n} sightings, expected world size {:.0}",
        db.expected_world_size()
    );

    // What would each semantics monitor? One builder, five semantics.
    let k = 100;
    let run = |q: RankQuery| q.top_k(k).run(&db).expect("independent backend");
    let pt = run(RankQuery::pt(k)).ranking.top_k_u32(k);
    let escore = run(RankQuery::escore()).ranking.top_k_u32(k);
    let erank = run(RankQuery::erank()).ranking.top_k_u32(k);
    let urank = run(RankQuery::urank(k)).ranking.top_k_u32(k);
    let prfe = run(RankQuery::prfe(0.95)).ranking.top_k_u32(k);

    println!("\npairwise Kendall distance of the top-{k} watchlists:");
    let lists = [
        ("PT(100)", &pt),
        ("E-Score", &escore),
        ("E-Rank", &erank),
        ("U-Rank", &urank),
        ("PRFe(.95)", &prfe),
    ];
    print!("{:>10}", "");
    for (name, _) in &lists {
        print!("{name:>11}");
    }
    println!();
    for (name_a, a) in &lists {
        print!("{name_a:>10}");
        for (_, b) in &lists {
            print!("{:>11.4}", kendall_topk(a.as_slice(), b.as_slice(), k));
        }
        println!();
    }

    // The unified answer: pick PT(1000) semantics, but evaluate it as a
    // 40-term PRFe mixture — just a different `Algorithm` on the same query.
    let h = 1000;
    let exact = RankQuery::pt(h)
        .algorithm(Algorithm::ExactGf)
        .run(&db)
        .expect("exact PT");
    let approx = RankQuery::pt(h)
        .algorithm(Algorithm::DftApprox(DftApproxConfig::refined(40)))
        .run(&db)
        .expect("mixture PT");

    let d = kendall_topk(&exact.ranking.top_k_u32(h), &approx.ranking.top_k_u32(h), h);
    println!("\nPT(1000) via 40-term PRFe mixture:");
    println!("  exact:       {:.3}s", exact.report.kernel_seconds);
    println!(
        "  mixture:     {:.3}s ({} numeric mode)",
        approx.report.kernel_seconds,
        match approx.report.numeric_mode {
            NumericMode::Scaled => "scaled",
            NumericMode::Complex => "complex",
            NumericMode::LogDomain => "log-domain",
        }
    );
    println!("  top-1000 Kendall distance to exact: {d:.4}");
    println!(
        "  (the mixture's cost is independent of h: at h = 10000 the exact \
         algorithm is ~20x slower while the mixture is unchanged — see \
         Figure 11 in EXPERIMENTS.md)"
    );
}
