//! Iceberg monitoring at scale: the paper's IIP workload end to end.
//!
//! Simulates an International Ice Patrol sighting database (drift days as
//! score, sighting-source confidence as probability), compares what the
//! classical ranking functions would tell an analyst, then shows the
//! PRFe-mixture trick: approximating PT(1000) with 40 exponentials and
//! ranking the whole dataset in a fraction of the exact cost.
//!
//! ```text
//! cargo run --release --example iceberg_monitoring
//! ```

use std::time::Instant;

use prf::approx::{approximate_weights, DftApproxConfig};
use prf::baselines::{erank_ranking, escore_ranking, pt_ranking, urank_topk};
use prf::core::{prfe_rank_log, Ranking};
use prf::datasets::iip_db;
use prf::metrics::kendall_topk;

fn main() {
    let n = 100_000;
    let db = iip_db(n, 42);
    println!(
        "simulated IIP dataset: {n} sightings, expected world size {:.0}",
        db.expected_world_size()
    );

    // What would each semantics monitor?
    let k = 100;
    let pt = pt_ranking(&db, k).top_k_u32(k);
    let escore = escore_ranking(&db).top_k_u32(k);
    let erank = erank_ranking(&db).top_k_u32(k);
    let urank: Vec<u32> = urank_topk(&db, k).iter().map(|t| t.0).collect();
    let prfe = Ranking::from_keys(&prfe_rank_log(&db, 0.95)).top_k_u32(k);

    println!("\npairwise Kendall distance of the top-{k} watchlists:");
    let lists = [
        ("PT(100)", &pt),
        ("E-Score", &escore),
        ("E-Rank", &erank),
        ("U-Rank", &urank),
        ("PRFe(.95)", &prfe),
    ];
    print!("{:>10}", "");
    for (name, _) in &lists {
        print!("{name:>11}");
    }
    println!();
    for (name_a, a) in &lists {
        print!("{name_a:>10}");
        for (_, b) in &lists {
            print!("{:>11.4}", kendall_topk(a.as_slice(), b.as_slice(), k));
        }
        println!();
    }

    // The unified answer: pick PT(1000) semantics, but evaluate it as a
    // 40-term PRFe mixture.
    let h = 1000;
    let start = Instant::now();
    let exact = pt_ranking(&db, h);
    let t_exact = start.elapsed().as_secs_f64();

    let step = move |i: usize| if i < h { 1.0 } else { 0.0 };
    let start = Instant::now();
    let mix = approximate_weights(&step, h, &DftApproxConfig::refined(40));
    let approx = mix.ranking_independent_fast(&db);
    let t_approx = start.elapsed().as_secs_f64();

    let d = kendall_topk(&exact.top_k_u32(h), &approx.top_k_u32(h), h);
    println!("\nPT(1000) via 40-term PRFe mixture:");
    println!("  exact:       {t_exact:.3}s");
    println!("  mixture:     {t_approx:.3}s ({} terms)", mix.len());
    println!("  top-1000 Kendall distance to exact: {d:.4}");
    println!(
        "  (the mixture's cost is independent of h: at h = 10000 the exact \
         algorithm is ~20x slower while the mixture is unchanged — see \
         Figure 11 in EXPERIMENTS.md)"
    );
}
