//! The paper's running example (Figure 1): ranking speeding cars captured
//! by an uncertain traffic-monitoring infrastructure.
//!
//! Two radars may report the same car with conflicting readings (mutual
//! exclusivity), modelled by a probabilistic and/xor tree. The example
//! walks through possible worlds, positional probabilities (Example 4),
//! PRFe evaluation (Algorithm 3) and the consensus top-k (Example 6).
//!
//! ```text
//! cargo run --release --example traffic_radar
//! ```

#![allow(clippy::needless_range_loop)] // oracle comparisons over parallel arrays

use prf::baselines::expected_symmetric_difference;
use prf::core::rank_distributions_tree;
use prf::pdb::{AndXorTree, NodeKind, TreeBuilder, TupleId};
use prf::prelude::RankQuery;

/// Builds the Figure 1 tree: six radar readings, with (t2, t3) and (t4, t5)
/// mutually exclusive (same plate seen at different speeds).
fn figure1() -> (AndXorTree, Vec<&'static str>) {
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    let labels = vec![
        "X-123 @ 120", // t1
        "Y-245 @ 130", // t2
        "Y-245 @ 80",  // t3 (conflicts with t2)
        "Z-541 @ 95",  // t4 (conflicts with t5)
        "Z-541 @ 110", // t5
        "L-110 @ 105", // t6 (certain)
    ];
    let x1 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    b.add_leaf(x1, 0.4, 120.0).unwrap();
    let x2 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    b.add_leaf(x2, 0.7, 130.0).unwrap();
    b.add_leaf(x2, 0.3, 80.0).unwrap();
    let x3 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    b.add_leaf(x3, 0.4, 95.0).unwrap();
    b.add_leaf(x3, 0.6, 110.0).unwrap();
    let x4 = b.add_inner(root, NodeKind::Xor, 1.0).unwrap();
    b.add_leaf(x4, 1.0, 105.0).unwrap();
    (b.build().unwrap(), labels)
}

fn main() {
    let (tree, labels) = figure1();
    let name = |t: TupleId| labels[t.index()];

    // Possible worlds (the paper's second table).
    let worlds = tree.enumerate_worlds(1 << 12).expect("small tree");
    println!("possible worlds ({} total):", worlds.len());
    let mut sorted = worlds.worlds.clone();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (w, p) in &sorted {
        let members: Vec<&str> = w.ranked(tree.scores()).iter().map(|&t| name(t)).collect();
        println!("  Pr {p:.3}: {{{}}}", members.join(", "));
    }

    // Positional probabilities via the generating-function expansion
    // (Algorithm 2). Example 4: Pr(r(t4) = 3) = 0.216.
    let dists = rank_distributions_tree(&tree);
    println!("\npositional probabilities Pr(r(t) = j):");
    print!("{:>14}", "");
    for j in 1..=4 {
        print!("   j={j}  ");
    }
    println!();
    for (t, d) in dists.iter().enumerate() {
        print!("{:>14}", name(TupleId(t as u32)));
        for j in 0..4 {
            print!("  {:.3} ", d[j]);
        }
        println!();
    }
    assert!((dists[3][2] - 0.216).abs() < 1e-9, "Example 4 checks out");

    // PRFe across the spectrum (Algorithm 3 — incremental evaluation),
    // through the unified engine: the same query that ranks independent
    // relations runs on the correlated tree.
    println!("\nPRFe rankings as α sweeps:");
    for alpha in [0.2, 0.6, 0.95] {
        let r = RankQuery::prfe(alpha).run(&tree).expect("PRFe on trees");
        let names: Vec<&str> = r.ranking.order().iter().map(|&t| name(t)).collect();
        println!("  α = {alpha:<4} {}", names.join(" > "));
    }

    // Consensus top-2 under symmetric difference (Example 6): {t2, t5}.
    let scores = tree.scores();
    let mut best: Option<(Vec<TupleId>, f64)> = None;
    for a in 0..6u32 {
        for b in (a + 1)..6 {
            let cand = vec![TupleId(a), TupleId(b)];
            let d = expected_symmetric_difference(&worlds, &cand, 2, scores);
            if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                best = Some((cand, d));
            }
        }
    }
    let (consensus, dist) = best.expect("pairs exist");
    let names: Vec<&str> = consensus.iter().map(|&t| name(t)).collect();
    println!(
        "\nconsensus top-2 (min expected symmetric difference): {{{}}} at E[dis] = {dist:.3}",
        names.join(", ")
    );
    assert_eq!(
        consensus,
        vec![TupleId(1), TupleId(4)],
        "Example 6: {{t2, t5}}"
    );
}
