//! Uncertain nearest neighbours: k-NN as a ranking query.
//!
//! Section 2 of the paper points out that a k-nearest-neighbour query over
//! uncertain points *is* a ranking query — score each point by (negated)
//! distance to the query point and rank under any PRF semantics. This
//! example runs a sensor-location scenario: detections with existence
//! probabilities, some mutually exclusive (one object can't be in two
//! places), asking "which detections are most likely among my 3 nearest?".
//!
//! ```text
//! cargo run --release --example uncertain_knn
//! ```

use prf::pdb::{AndXorTree, NodeKind, TreeBuilder, TupleId};
use prf::prelude::RankQuery;

/// A detection: position + existence probability; `group` ties alternative
/// positions of the same object together (mutually exclusive).
struct Detection {
    label: &'static str,
    pos: (f64, f64),
    prob: f64,
    group: u32,
}

fn main() {
    let query = (0.0f64, 0.0f64);
    let detections = [
        Detection {
            label: "A@near",
            pos: (1.0, 0.5),
            prob: 0.6,
            group: 0,
        },
        Detection {
            label: "A@far",
            pos: (4.0, 3.0),
            prob: 0.4,
            group: 0,
        },
        Detection {
            label: "B",
            pos: (1.5, -0.5),
            prob: 0.9,
            group: 1,
        },
        Detection {
            label: "C@near",
            pos: (0.5, 1.8),
            prob: 0.3,
            group: 2,
        },
        Detection {
            label: "C@mid",
            pos: (2.5, 2.0),
            prob: 0.5,
            group: 2,
        },
        Detection {
            label: "D",
            pos: (3.0, -1.0),
            prob: 0.99,
            group: 3,
        },
        Detection {
            label: "E",
            pos: (0.2, -2.2),
            prob: 0.45,
            group: 4,
        },
    ];

    // Score = negated Euclidean distance (closer = higher score); mutual
    // exclusivity per object via xor groups.
    let mut b = TreeBuilder::new(NodeKind::And);
    let root = b.root();
    let mut current_group = u32::MAX;
    let mut xor = root;
    for d in &detections {
        if d.group != current_group {
            xor = b.add_inner(root, NodeKind::Xor, 1.0).expect("inner");
            current_group = d.group;
        }
        let dist = ((d.pos.0 - query.0).powi(2) + (d.pos.1 - query.1).powi(2)).sqrt();
        b.add_leaf(xor, d.prob, -dist).expect("leaf");
    }
    let tree: AndXorTree = b.build().expect("valid tree");
    let name = |t: TupleId| detections[t.index()].label;

    println!("query point: {query:?}");
    println!("{:>8} {:>8} {:>6}", "point", "dist", "prob");
    for d in &detections {
        let dist = ((d.pos.0).powi(2) + (d.pos.1).powi(2)).sqrt();
        println!("{:>8} {:>8.2} {:>6.2}", d.label, dist, d.prob);
    }

    // PT(3): probability of being among the 3 nearest *available* points —
    // the unified engine runs the same query on the correlated model.
    let k = 3;
    let pt = RankQuery::pt(k).run(&tree).expect("PT on trees");
    println!("\nPr(among the {k} nearest) — PT({k}) on the correlated model:");
    for (i, &t) in pt.ranking.order().iter().enumerate() {
        println!("  {}. {:>8}  {:.3}", i + 1, name(t), pt.ranking.key_at(i));
    }

    // PRFe(0.8): a smooth prior that discounts deeper ranks geometrically.
    let prfe = RankQuery::prfe(0.8).run(&tree).expect("PRFe on trees");
    let order: Vec<&str> = prfe.ranking.order().iter().map(|&t| name(t)).collect();
    println!("\nPRFe(0.8) order: {}", order.join(" > "));

    // Sanity: the two alternatives of one object never co-rank.
    let worlds = tree.enumerate_worlds(1 << 12).expect("small model");
    for (w, _) in &worlds.worlds {
        assert!(!(w.contains(TupleId(0)) && w.contains(TupleId(1))));
        assert!(!(w.contains(TupleId(3)) && w.contains(TupleId(4))));
    }
    println!(
        "\n(mutual exclusivity honoured across {} possible worlds)",
        worlds.len()
    );
}
