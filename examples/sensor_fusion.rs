//! Sensor fusion: attribute uncertainty and Markov-chain correlations.
//!
//! Two scenarios beyond plain tuple independence:
//!
//! 1. **Uncertain scores** (Section 4.4): each sensor's reading is a
//!    discrete distribution over values; alternatives are compiled into an
//!    and/xor tree and ranked with the standard algorithms.
//! 2. **Temporal correlations** (Section 9.3): consecutive readings of a
//!    flaky sensor are correlated (if it dropped out at time t it likely
//!    drops out at t+1); a Markov chain models this, and the junction-tree
//!    machinery ranks the readings exactly.
//!
//! ```text
//! cargo run --release --example sensor_fusion
//! ```

use prf::core::{prf_rank_uncertain, prfe_rank_uncertain, Ranking, StepWeight, ValueOrder};
use prf::graphical::MarkovChain;
use prf::numeric::Complex;
use prf::pdb::{AttributeUncertainDb, UncertainTuple};
use prf::prelude::{NetworkRelation, RankQuery};

fn main() {
    // --- Scenario 1: uncertain readings ---------------------------------
    // Each sensor reports a temperature with calibration uncertainty; we
    // want the k sensors most likely to be among the hottest.
    let sensors = AttributeUncertainDb::new(vec![
        UncertainTuple::new(vec![(98.0, 0.6), (92.0, 0.4)]).unwrap(), // s0
        UncertainTuple::new(vec![(99.5, 0.3), (90.0, 0.5)]).unwrap(), // s1 (may be offline)
        UncertainTuple::new(vec![(95.0, 1.0)]).unwrap(),              // s2 (calibrated)
        UncertainTuple::new(vec![(97.0, 0.5), (96.0, 0.5)]).unwrap(), // s3
    ]);
    println!("scenario 1: ranking sensors with uncertain readings");
    let pt = prf_rank_uncertain(&sensors, &StepWeight { h: 2 }).expect("valid model");
    let r = Ranking::from_values(&pt, ValueOrder::RealPart);
    for (i, &t) in r.order().iter().enumerate() {
        println!(
            "  {}. sensor s{} — Pr(top-2) = {:.3}",
            i + 1,
            t.0,
            r.key_at(i)
        );
    }
    let prfe = prfe_rank_uncertain(&sensors, Complex::real(0.8)).expect("valid model");
    let r2 = Ranking::from_values(&prfe, ValueOrder::Magnitude);
    let order: Vec<String> = r2.order().iter().map(|t| format!("s{}", t.0)).collect();
    println!("  PRFe(0.8) order: {}", order.join(" > "));

    // --- Scenario 2: temporally correlated dropouts ----------------------
    // One sensor's hourly readings: if the link was down at hour t it tends
    // to stay down. Scores are the readings; we rank hours by PT(2) under
    // the *correlated* model and under a (wrong) independence assumption.
    println!("\nscenario 2: Markov-correlated availability across 6 hours");
    let chain = MarkovChain::new(
        [0.2, 0.8], // usually up at hour 0
        vec![
            [[0.7, 0.3], [0.1, 0.9]], // sticky states
            [[0.7, 0.3], [0.1, 0.9]],
            [[0.7, 0.3], [0.1, 0.9]],
            [[0.7, 0.3], [0.1, 0.9]],
            [[0.7, 0.3], [0.1, 0.9]],
        ],
    );
    let scores = [55.0, 71.0, 64.0, 90.0, 62.0, 80.0];
    // The unified engine on a graphical backend: wrap the chain's Markov
    // network in the ranking adapter and run the *same* PT(2) query that
    // works on independent relations and trees.
    let rel = NetworkRelation::new(&chain.to_network(), scores.to_vec());
    let result = RankQuery::pt(2).run(&rel).expect("PT on a Markov network");
    let correlated = result.values.as_complex().expect("exact PT values");
    let rc = &result.ranking;

    // Independence projection: same marginals, correlations dropped.
    let marginals = chain.marginals();
    let ind =
        prf::pdb::IndependentDb::from_pairs(scores.iter().zip(&marginals).map(|(&s, &p)| (s, p)))
            .unwrap();
    let ind_result = RankQuery::pt(2).run(&ind).expect("PT on independent data");
    let ind_vals = ind_result.values.as_complex().expect("exact PT values");
    let ri = &ind_result.ranking;

    println!("  hour  reading  Pr(up)  PT(2) corr  PT(2) indep");
    for hour in 0..6 {
        println!(
            "  {hour:>4}  {:>7}  {:>6.3}  {:>10.4}  {:>11.4}",
            scores[hour], marginals[hour], correlated[hour].re, ind_vals[hour].re
        );
    }
    let co: Vec<String> = rc.top_k(4).iter().map(|t| format!("h{}", t.0)).collect();
    let io: Vec<String> = ri.top_k(4).iter().map(|t| format!("h{}", t.0)).collect();
    println!("  top-4 with correlations:    {}", co.join(" > "));
    println!("  top-4 assuming independence: {}", io.join(" > "));
    println!(
        "\nReading: sticky dropouts reshape the positional probabilities \
         (hour 1's PT value drops by a third once the correlation is \
         modelled) and flip the tail of the watchlist — Figure 10's message, \
         here exact via the Section 9.4 junction-tree algorithm driven \
         through the unified engine's graphical backend."
    );
}
