//! Quickstart: ranking a small uncertain relation every way the library
//! knows how — through the one unified entry point, `RankQuery`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prf::baselines::k_selection;
use prf::prelude::*;

fn main() {
    // A tiny purchasing decision: candidate offers with a quality score and
    // a probability that the listing is still valid (the paper's House
    // Search motivation).
    let offers = [
        ("penthouse, stale listing", 100.0, 0.35),
        ("great condo", 85.0, 0.75),
        ("solid townhouse", 70.0, 0.95),
        ("fixer-upper", 50.0, 1.00),
        ("mystery auction", 90.0, 0.50),
    ];
    let db =
        IndependentDb::from_pairs(offers.iter().map(|&(_, s, p)| (s, p))).expect("valid offers");
    let name = |id: prf::pdb::TupleId| offers[id.index()].0;

    println!("offers (score, probability):");
    for (n, s, p) in &offers {
        println!("  {n:<25} score {s:>5}  p {p:.2}");
    }

    // --- The PRF family, one query builder ------------------------------
    // PT(2): probability of making the top 2.
    let pt = RankQuery::pt(2).run(&db).expect("PT on independent data");
    println!("\nPT(2) ranking (by Pr(rank ≤ 2)):");
    for (i, &t) in pt.ranking.order().iter().enumerate() {
        println!(
            "  {}. {} (Pr = {:.3})",
            i + 1,
            name(t),
            pt.ranking.key_at(i)
        );
    }

    // PRFe(α) spans a spectrum between score-like and probability-like
    // behaviour — same entry point, different semantics.
    for alpha in [0.3, 0.9] {
        let r = RankQuery::prfe(alpha).run(&db).expect("PRFe everywhere");
        let names: Vec<&str> = r.ranking.order().iter().map(|&t| name(t)).collect();
        println!(
            "\nPRFe({alpha}) ranking ({} algorithm): {}",
            r.report.algorithm.name(),
            names.join(" > ")
        );
    }

    // --- Prior semantics: also just `Semantics` variants -----------------
    println!("\nbaselines (every one through the same engine):");
    let top2: Vec<&str> = RankQuery::pt(2)
        .top_k(2)
        .run(&db)
        .expect("PT")
        .ranking
        .order()
        .iter()
        .map(|&t| name(t))
        .collect();
    println!("  PT(2) top-2:      {}", top2.join(", "));
    let urank = RankQuery::urank(2).run(&db).expect("U-Rank");
    let u: Vec<&str> = urank.ranking.order().iter().map(|&t| name(t)).collect();
    println!("  U-Rank top-2:     {}", u.join(", "));
    if let Some(set) = RankQuery::utop(2).run(&db).ok().and_then(|r| r.set) {
        let names: Vec<&str> = set.members.iter().map(|&t| name(t)).collect();
        println!(
            "  U-Top top-2:      {} (Pr = {:.3})",
            names.join(", "),
            set.log_prob.exp()
        );
    }
    let es = RankQuery::escore().run(&db).expect("E-Score");
    println!("  E-Score winner:   {}", name(es.ranking.order()[0]));
    let er = RankQuery::erank().run(&db).expect("E-Rank");
    println!("  E-Rank winner:    {}", name(er.ranking.order()[0]));
    // k-selection is the one set semantics outside the engine (and the PRF
    // family); its dynamic program stays a free function.
    if let Some((set, v)) = k_selection(&db, 2) {
        let names: Vec<&str> = set.iter().map(|&t| name(t)).collect();
        println!(
            "  k-selection(2):   {} (expected best score {v:.1})",
            names.join(", ")
        );
    }

    println!(
        "\nNote how the answers disagree — the motivation for a parameterized \
         family instead of any single fixed ranking function."
    );
}
