//! Quickstart: ranking a small uncertain relation every way the library
//! knows how.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prf::baselines::{
    erank_ranking, escore_ranking, k_selection, pt_ranking, urank_topk, utop_topk,
};
use prf::core::{prf_rank, prfe_rank_log, Ranking, StepWeight, ValueOrder};
use prf::pdb::IndependentDb;

fn main() {
    // A tiny purchasing decision: candidate offers with a quality score and
    // a probability that the listing is still valid (the paper's House
    // Search motivation).
    let offers = [
        ("penthouse, stale listing", 100.0, 0.35),
        ("great condo", 85.0, 0.75),
        ("solid townhouse", 70.0, 0.95),
        ("fixer-upper", 50.0, 1.00),
        ("mystery auction", 90.0, 0.50),
    ];
    let db =
        IndependentDb::from_pairs(offers.iter().map(|&(_, s, p)| (s, p))).expect("valid offers");
    let name = |id: prf::pdb::TupleId| offers[id.index()].0;

    println!("offers (score, probability):");
    for (n, s, p) in &offers {
        println!("  {n:<25} score {s:>5}  p {p:.2}");
    }

    // --- The PRF family -------------------------------------------------
    // PT(2): probability of making the top 2.
    let pt = Ranking::from_values(&prf_rank(&db, &StepWeight { h: 2 }), ValueOrder::RealPart);
    println!("\nPT(2) ranking (by Pr(rank ≤ 2)):");
    for (i, &t) in pt.order().iter().enumerate() {
        println!("  {}. {} (Pr = {:.3})", i + 1, name(t), pt.key_at(i));
    }

    // PRFe(α) spans a spectrum between score-like and probability-like
    // behaviour.
    for alpha in [0.3, 0.9] {
        let r = Ranking::from_keys(&prfe_rank_log(&db, alpha));
        let names: Vec<&str> = r.order().iter().map(|&t| name(t)).collect();
        println!("\nPRFe({alpha}) ranking: {}", names.join(" > "));
    }

    // --- Prior semantics, for comparison --------------------------------
    println!("\nbaselines:");
    let top2: Vec<&str> = pt_ranking(&db, 2)
        .top_k(2)
        .iter()
        .map(|&t| name(t))
        .collect();
    println!("  PT(2) top-2:      {}", top2.join(", "));
    let u: Vec<&str> = urank_topk(&db, 2).iter().map(|&t| name(t)).collect();
    println!("  U-Rank top-2:     {}", u.join(", "));
    if let Some((set, logp)) = utop_topk(&db, 2) {
        let names: Vec<&str> = set.iter().map(|&t| name(t)).collect();
        println!(
            "  U-Top top-2:      {} (Pr = {:.3})",
            names.join(", "),
            logp.exp()
        );
    }
    let es = escore_ranking(&db);
    println!("  E-Score winner:   {}", name(es.order()[0]));
    let er = erank_ranking(&db);
    println!("  E-Rank winner:    {}", name(er.order()[0]));
    if let Some((set, v)) = k_selection(&db, 2) {
        let names: Vec<&str> = set.iter().map(|&t| name(t)).collect();
        println!(
            "  k-selection(2):   {} (expected best score {v:.1})",
            names.join(", ")
        );
    }

    println!(
        "\nNote how the answers disagree — the motivation for a parameterized \
         family instead of any single fixed ranking function."
    );
}
